package experiments

import (
	"math"
	"strings"
	"testing"

	"lrm/internal/dataset"
)

// testCfg keeps experiment tests fast: small datasets, 3 snapshots.
func testCfg() Config { return Config{Size: dataset.Small, Snapshots: 3} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig10", "fig11", "fig12", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "summary", "table2", "table3", "table4"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
	for _, id := range got {
		if Describe(id) == "" {
			t.Fatalf("missing description for %s", id)
		}
	}
	if _, err := Run("nope", testCfg()); err == nil {
		t.Fatal("expected unknown-id error")
	}
}

func TestTable2ShapeClaims(t *testing.T) {
	r, err := RunTable2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The reduced model takes far fewer, larger steps (Table II).
	if r.ReducedSteps >= r.FullSteps {
		t.Fatalf("reduced steps %d >= full %d", r.ReducedSteps, r.FullSteps)
	}
	if r.ReducedDt <= r.FullDt {
		t.Fatalf("reduced dt %v <= full %v", r.ReducedDt, r.FullDt)
	}
	// Byte statistics "nearly the same".
	if math.Abs(r.Full.ByteEntropy-r.Reduced.ByteEntropy) > 1.0 {
		t.Fatalf("byte entropies diverge: %v vs %v", r.Full.ByteEntropy, r.Reduced.ByteEntropy)
	}
	if math.Abs(r.Full.ByteMean-r.Reduced.ByteMean) > 25 {
		t.Fatalf("byte means diverge: %v vs %v", r.Full.ByteMean, r.Reduced.ByteMean)
	}
	out := r.Render()
	for _, want := range []string{"Problem size", "Byte entropy", "Serial correlation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig1ShapeClaims(t *testing.T) {
	r, err := RunFig1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Full and reduced models share characteristics: entropy within
		// ~1.5 bits, KS distance bounded.
		if math.Abs(row.Full.ByteEntropy-row.Reduced.ByteEntropy) > 1.5 {
			t.Errorf("%s: entropy gap %v vs %v", row.Dataset, row.Full.ByteEntropy, row.Reduced.ByteEntropy)
		}
		if row.CDFDistance > 0.4 {
			t.Errorf("%s: KS distance %v too large", row.Dataset, row.CDFDistance)
		}
		if len(row.FullCDF) == 0 || len(row.RedCDF) == 0 {
			t.Errorf("%s: missing CDF points", row.Dataset)
		}
	}
	if !strings.Contains(r.Render(), "Heat3d") {
		t.Fatal("render missing dataset names")
	}
}

func TestFig3ShapeClaims(t *testing.T) {
	r, err := RunFig3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets x 3 compressors x 4 methods.
	if len(r.Cells) != 24 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	// Shape claim 1: one-base and multi-base beat direct compression for
	// the lossy codecs on both PDE datasets.
	for _, ds := range []string{"Heat3d", "Laplace"} {
		for _, comp := range []string{"zfp", "sz"} {
			orig, _ := r.Ratio(ds, comp, "original")
			one, _ := r.Ratio(ds, comp, "one-base")
			multi, _ := r.Ratio(ds, comp, "multi-base")
			if one <= orig {
				t.Errorf("%s/%s: one-base %v did not beat original %v", ds, comp, one, orig)
			}
			if multi <= orig {
				t.Errorf("%s/%s: multi-base %v did not beat original %v", ds, comp, multi, orig)
			}
			// Shape claim 2: one-base beats DuoModel. In 3-D this holds only
			// when one plane (N^2) is smaller than the coarse cube
			// ((N/4)^3), i.e. N > 64 — true at the paper's 192^3 but not at
			// the test grid, so assert it on the 2-D Laplace where the
			// plane is smaller at every N (see EXPERIMENTS.md).
			if ds == "Laplace" {
				duo, _ := r.Ratio(ds, comp, "duomodel")
				if one <= duo {
					t.Errorf("%s/%s: one-base %v did not beat duomodel %v", ds, comp, one, duo)
				}
			}
		}
	}
	if !strings.Contains(r.Render(), "Heat3d+ZFP") {
		t.Fatalf("render:\n%s", r.Render())
	}
}

func TestFig4ImprovementAcrossLifetimes(t *testing.T) {
	r, err := RunFig4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2*3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// The robust Fig. 4 claim at any scale: one-base improves every
	// snapshot of both compressible PDE lifetimes substantially. (The
	// paper's positive improvement-vs-compressibility slope inverts at our
	// small grids because the stored base plane is a much larger fraction
	// of the data — documented divergence #4 in EXPERIMENTS.md.)
	for _, p := range r.Points {
		if p.Improvement < 1.5 {
			t.Errorf("%s: improvement %v < 1.5x at base ratio %v", p.Dataset, p.Improvement, p.BaseRatio)
		}
		if p.BaseRatio <= 1 {
			t.Errorf("%s: implausible base ratio %v", p.Dataset, p.BaseRatio)
		}
	}
	if !strings.Contains(r.Render(), "Pearson") {
		t.Fatal("render missing correlation")
	}
}

// sharedSweep caches the dimension-reduction sweep across tests (it is the
// most expensive computation in the package).
var sharedSweep *DimredSweep

func getSweep(t *testing.T) *DimredSweep {
	t.Helper()
	if sharedSweep == nil {
		s, err := runDimredSweep(testCfg())
		if err != nil {
			t.Fatal(err)
		}
		sharedSweep = s
	}
	return sharedSweep
}

func TestFig6ShapeClaims(t *testing.T) {
	s := getSweep(t)
	r := &Fig6Result{Sweep: s}
	// 9 datasets x 2 compressors x 4 methods.
	if len(s.Cells) != 72 {
		t.Fatalf("cells = %d", len(s.Cells))
	}
	// Shape claim: PCA and SVD significantly improve the strongly
	// structured datasets under at least one codec.
	for _, ds := range []string{"Heat3d", "Laplace", "Sedov_pres"} {
		improvedSomewhere := false
		for _, comp := range []string{"zfp", "sz"} {
			orig, _ := s.Cell(ds, "original", comp)
			for _, m := range []string{"pca", "svd"} {
				c, ok := s.Cell(ds, m, comp)
				if ok && c.Ratio > orig.Ratio*1.1 {
					improvedSomewhere = true
				}
			}
		}
		if !improvedSomewhere {
			t.Errorf("%s: neither PCA nor SVD improved compression", ds)
		}
	}
	// Shape claim: Fish (many zeros) does not benefit much from PCA/SVD
	// preconditioning. (Our synthetic Fish's all-zero matricized rows let
	// the wavelet model win somewhat more than the paper's real Fish —
	// documented divergence #3 in EXPERIMENTS.md — so it gets a looser
	// ceiling.)
	for _, comp := range []string{"zfp"} {
		orig, _ := s.Cell("Fish", "original", comp)
		for _, m := range []string{"pca", "svd"} {
			c, _ := s.Cell("Fish", m, comp)
			if c.Ratio > orig.Ratio*1.5 {
				t.Errorf("Fish/%s/%s: unexpected large improvement %v vs %v", m, comp, c.Ratio, orig.Ratio)
			}
		}
		if c, _ := s.Cell("Fish", "wavelet", comp); c.Ratio > orig.Ratio*2.5 {
			t.Errorf("Fish/wavelet/%s: improvement %v vs %v beyond documented divergence", comp, c.Ratio, orig.Ratio)
		}
	}
	if !strings.Contains(r.Render(), "pca+ZFP") {
		t.Fatalf("fig6 render:\n%s", r.Render())
	}
}

func TestFig9RepSizeShapes(t *testing.T) {
	s := getSweep(t)
	r := &Fig9Result{Sweep: s}
	// Table III ordering: SVD stores three factor matrices, PCA two, so
	// SVD reps are at least as large as PCA's on most datasets.
	svdLarger, total := 0, 0
	for _, ds := range dataset.Names() {
		pca, ok1 := s.Cell(ds, "pca", "zfp")
		svd, ok2 := s.Cell(ds, "svd", "zfp")
		if !ok1 || !ok2 {
			continue
		}
		total++
		if svd.RepBytes >= pca.RepBytes*3/4 {
			svdLarger++
		}
	}
	if svdLarger*2 <= total {
		t.Errorf("SVD rep comparable-or-larger than PCA on only %d/%d datasets", svdLarger, total)
	}
	// Divergence from the paper, asserted so it stays understood: on our
	// cleaner synthetic data the 5%% threshold leaves FEW wavelet
	// coefficients, so the wavelet rep is small — but it pays with the
	// LARGEST RMSE (the paper reaches the same "wavelet is a poor
	// preconditioner" conclusion through a big sparse matrix instead; see
	// EXPERIMENTS.md).
	wavWorse, total2 := 0, 0
	for _, ds := range dataset.Names() {
		pca, ok1 := s.Cell(ds, "pca", "zfp")
		wav, ok2 := s.Cell(ds, "wavelet", "zfp")
		if !ok1 || !ok2 {
			continue
		}
		total2++
		if wav.RMSE >= pca.RMSE {
			wavWorse++
		}
	}
	if wavWorse*3 < total2*2 {
		t.Errorf("wavelet RMSE above PCA on only %d/%d datasets", wavWorse, total2)
	}
	if !strings.Contains(r.Render(), "Wavelet") {
		t.Fatal("fig9 render broken")
	}
}

func TestFig10RMSEClaims(t *testing.T) {
	s := getSweep(t)
	r := &Fig10Result{Sweep: s}
	// Shape claim: preconditioned pipelines generally have higher RMSE
	// than direct compression at the paper's nominal bounds.
	higher := 0
	total := 0
	for _, ds := range dataset.Names() {
		for _, comp := range []string{"zfp", "sz"} {
			orig, ok := s.Cell(ds, "original", comp)
			if !ok {
				continue
			}
			for _, m := range []string{"pca", "svd", "wavelet"} {
				c, ok := s.Cell(ds, m, comp)
				if !ok {
					continue
				}
				total++
				if c.RMSE >= orig.RMSE {
					higher++
				}
			}
		}
	}
	if higher*3 < total*2 { // at least ~2/3 of combinations
		t.Errorf("preconditioning raised RMSE in only %d/%d cases", higher, total)
	}
	if !strings.Contains(r.Render(), "RMSE") {
		t.Fatal("fig10 render broken")
	}
}

func TestFig12OverheadClaims(t *testing.T) {
	s := getSweep(t)
	r := &Fig12Result{Sweep: s}
	// Shape claim: SVD preconditioning costs more compression time than
	// direct; decompression overhead is smaller than compression overhead.
	baseC, baseD := r.MeanTimes("original", "zfp")
	svdC, svdD := r.MeanTimes("svd", "zfp")
	if svdC <= baseC {
		t.Errorf("svd compression %v not slower than direct %v", svdC, baseC)
	}
	if baseC <= 0 || baseD <= 0 {
		t.Fatalf("missing baseline times: %v %v", baseC, baseD)
	}
	// Decompression multiplier below compression multiplier (Fig. 12's
	// asymmetry: the expensive factorisation happens at compression).
	if svdD/baseD > svdC/baseC*2 {
		t.Errorf("svd decompression multiplier %v unexpectedly above compression %v",
			svdD/baseD, svdC/baseC)
	}
	if !strings.Contains(r.Render(), "compress(s)") {
		t.Fatal("fig12 render broken")
	}
}

func TestFig7Fig8Spectra(t *testing.T) {
	r7, err := RunFig7(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunFig8(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r7.Rows) != 9 || len(r8.Rows) != 9 {
		t.Fatalf("rows = %d, %d", len(r7.Rows), len(r8.Rows))
	}
	first := func(rows []SpectrumRow, ds string) float64 {
		for _, r := range rows {
			if r.Dataset == ds {
				return r.Proportions[0]
			}
		}
		return -1
	}
	// Shape claim: the strongly structured datasets have dominant first
	// components; MD data does not.
	for _, rows := range [][]SpectrumRow{r7.Rows, r8.Rows} {
		if first(rows, "Laplace") < 0.4 {
			t.Errorf("Laplace first component %v not dominant", first(rows, "Laplace"))
		}
		if first(rows, "Umbrella") > first(rows, "Laplace") {
			t.Errorf("Umbrella (%v) should be less dominant than Laplace (%v)",
				first(rows, "Umbrella"), first(rows, "Laplace"))
		}
	}
	if !strings.Contains(r7.Render(), "PC1") || !strings.Contains(r8.Render(), "SV1") {
		t.Fatal("spectra render broken")
	}
}

func TestFig11MatchedRMSE(t *testing.T) {
	r, err := RunFig11(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// 9 datasets x 3 methods.
	if len(r.Curves) != 27 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	// RMSE must decrease (weakly) as precision grows along each curve.
	for _, c := range r.Curves {
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].RMSE > c.Points[i-1].RMSE*1.5+1e-12 {
				t.Errorf("%s/%s: RMSE grew with precision: %v -> %v",
					c.Dataset, c.Method, c.Points[i-1].RMSE, c.Points[i].RMSE)
			}
		}
	}
	// Shape claim: PCA or SVD beats direct at matched RMSE on at least one
	// of the strongly structured datasets.
	wins := 0
	for _, ds := range []string{"Heat3d", "Laplace", "Wave", "Astro", "Sedov_pres"} {
		if r.BeatsDirectAtMatchedRMSE(ds, "pca") || r.BeatsDirectAtMatchedRMSE(ds, "svd") {
			wins++
		}
	}
	if wins == 0 {
		t.Error("no dataset where PCA/SVD beats direct at matched RMSE")
	}
	if !strings.Contains(r.Render(), "precision") {
		t.Fatal("fig11 render broken")
	}
}

func TestTable4Orderings(t *testing.T) {
	r, err := RunTable4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 6 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	base, _ := r.Entry("Baseline")
	zfpE, _ := r.Entry("ZFP")
	pcaE, _ := r.Entry("PCA(ZFP)")
	staging, _ := r.Entry("Staging")
	// Claims from Table IV: direct compression beats the baseline; the
	// PCA pipeline's compression is slower than plain ZFP; PCA's I/O time
	// is lower than plain ZFP's (better ratio); staging is fastest.
	if zfpE.TotalTime >= base.TotalTime {
		t.Errorf("ZFP total %v did not beat baseline %v", zfpE.TotalTime, base.TotalTime)
	}
	if pcaE.CompressTime <= zfpE.CompressTime {
		t.Errorf("PCA compression %v not slower than ZFP %v", pcaE.CompressTime, zfpE.CompressTime)
	}
	if pcaE.IOTime >= zfpE.IOTime {
		t.Errorf("PCA I/O %v not below ZFP %v", pcaE.IOTime, zfpE.IOTime)
	}
	if staging.TotalTime >= base.TotalTime {
		t.Errorf("staging %v did not beat baseline %v", staging.TotalTime, base.TotalTime)
	}
	if !strings.Contains(r.Render(), "Staging+PCA+I/O") {
		t.Fatal("table4 render broken")
	}
}

func TestRunDispatch(t *testing.T) {
	// Smoke-run the cheapest experiment through the public dispatcher.
	r, err := Run("table2", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestAllResultsImplementCSV(t *testing.T) {
	// Every experiment result must be exportable as CSV for plotting.
	for _, id := range IDs() {
		if id == "fig6" || id == "fig9" || id == "fig10" || id == "fig12" {
			continue // covered by the shared-sweep CSV check below
		}
		res, err := Run(id, testCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		c, ok := res.(CSVer)
		if !ok {
			t.Fatalf("%s result does not implement CSVer", id)
		}
		out := c.CSV()
		if len(out) == 0 || !strings.Contains(out, ",") || !strings.Contains(out, "\n") {
			t.Fatalf("%s: implausible CSV output %q", id, out[:min(len(out), 60)])
		}
	}
	s := getSweep(t)
	for _, r := range []CSVer{&Fig6Result{Sweep: s}, &Fig9Result{Sweep: s}, &Fig10Result{Sweep: s}, &Fig12Result{Sweep: s}} {
		if !strings.Contains(r.CSV(), "rep_bytes") {
			t.Fatal("sweep CSV missing header")
		}
	}
}

func TestTable3ComplexityOrdering(t *testing.T) {
	r, err := RunTable3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 { // 3 sizes x 3 methods at Small
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Table III's complexity ordering at the largest measured size: the
	// SVD factorisation costs the most, the Haar transform the least.
	const m = 2048
	pca, ok1 := r.Time("pca", m)
	svd, ok2 := r.Time("svd", m)
	wav, ok3 := r.Time("wavelet", m)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing measurements")
	}
	if !(svd > pca) {
		t.Errorf("SVD (%v) should cost more than PCA (%v)", svd, pca)
	}
	if !(wav < svd) {
		t.Errorf("Wavelet (%v) should cost less than SVD (%v)", wav, svd)
	}
	// Cost grows with m for every method.
	for _, method := range []string{"pca", "svd", "wavelet"} {
		small, _ := r.Time(method, 256)
		large, _ := r.Time(method, 2048)
		if large <= small {
			t.Errorf("%s: time did not grow with size (%v -> %v)", method, small, large)
		}
	}
	if !strings.Contains(r.Render(), "reduce(s)") || !strings.Contains(r.CSV(), "reduce_sec") {
		t.Fatal("table3 render/CSV broken")
	}
}

func TestCoarseSnapshotsProtocol(t *testing.T) {
	for _, name := range []string{"Heat3d", "Laplace"} {
		coarse, err := dataset.CoarseSnapshots(name, dataset.Small, 4)
		if err != nil {
			t.Fatal(err)
		}
		full, err := dataset.Snapshots(name, dataset.Small, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(coarse) != 4 {
			t.Fatalf("%s: %d coarse snapshots", name, len(coarse))
		}
		for i := range coarse {
			if coarse[i].Len() >= full[i].Len() {
				t.Fatalf("%s: coarse frame %d not smaller (%d vs %d)",
					name, i, coarse[i].Len(), full[i].Len())
			}
		}
	}
	if _, err := dataset.CoarseSnapshots("Astro", dataset.Small, 2); err == nil {
		t.Fatal("expected no-protocol error for Astro")
	}
}

func TestSummaryAllNonDivergenceClaimsHold(t *testing.T) {
	r, err := RunSummary(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Claims) < 12 {
		t.Fatalf("only %d claims checked", len(r.Claims))
	}
	for _, c := range r.Claims {
		if strings.Contains(c.Statement, "(divergence") {
			continue // documented scale effects; may fail at Small
		}
		if !c.Holds {
			t.Errorf("%s: %q failed (%s)", c.Artifact, c.Statement, c.Detail)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "non-divergence claims hold") {
		t.Fatal("summary render broken")
	}
	if !strings.Contains(r.CSV(), "holds") {
		t.Fatal("summary CSV broken")
	}
}

package experiments

import (
	"fmt"
	"strings"

	"lrm/internal/core"
	"lrm/internal/dataset"
	"lrm/internal/grid"
	"lrm/internal/reduce"
)

// Fig3Cell is one bar of Fig. 3: a (dataset, compressor, method) average
// compression ratio over the snapshot series.
type Fig3Cell struct {
	Dataset, Compressor, Method string
	Ratio                       float64
}

// Fig3Result reproduces Fig. 3: compression ratios of the projection-based
// reduced models (original vs one-base vs multi-base vs DuoModel) on Heat3d
// and Laplace under SZ, ZFP, and FPC, averaged over the snapshot series.
type Fig3Result struct {
	Cells     []Fig3Cell
	Snapshots int
}

func init() {
	registerExperiment("fig3",
		"Fig. 3: compression ratios of projection-based reduced models (Heat3d, Laplace x SZ, ZFP, FPC)",
		func(cfg Config) (Renderer, error) { return RunFig3(cfg) })
}

// fig3Method builds the model for one bar, per snapshot index: DuoModel
// takes the matching coarse-simulation output, the others are stateless.
type fig3Method struct {
	label string
	model func(i int, coarse []*grid.Field) reduce.Model
}

// fig3Methods are the four bars per group. multi-base uses 2 sub-domains
// (the paper's 8 Z-ranks scaled to our grid heights so the stored planes
// stay a few percent of the data).
func fig3Methods() []fig3Method {
	return []fig3Method{
		{label: "original", model: func(int, []*grid.Field) reduce.Model { return nil }},
		{label: "one-base", model: func(int, []*grid.Field) reduce.Model { return reduce.OneBase{} }},
		{label: "multi-base", model: func(int, []*grid.Field) reduce.Model { return reduce.MultiBase{Blocks: 2} }},
		{label: "duomodel", model: func(i int, coarse []*grid.Field) reduce.Model {
			return reduce.DuoModelSim{Coarse: coarse[i]}
		}},
	}
}

// fig3Compressors are the three codec families of Section IV-B.
func fig3Compressors() []string { return []string{"sz", "zfp", "fpc"} }

// RunFig3 executes the Fig. 3 experiment.
func RunFig3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	out := &Fig3Result{Snapshots: cfg.Snapshots}
	for _, ds := range []string{"Heat3d", "Laplace"} {
		snaps, err := dataset.Snapshots(ds, cfg.Size, cfg.Snapshots)
		if err != nil {
			return nil, err
		}
		coarse, err := dataset.CoarseSnapshots(ds, cfg.Size, cfg.Snapshots)
		if err != nil {
			return nil, err
		}
		for _, family := range fig3Compressors() {
			data, delta, err := core.PaperCodecs(family)
			if err != nil {
				return nil, err
			}
			for _, method := range fig3Methods() {
				sum := 0.0
				for i, f := range snaps {
					res, err := core.Compress(f, core.Options{
						Model: method.model(i, coarse), DataCodec: data, DeltaCodec: delta,
					})
					if err != nil {
						return nil, fmt.Errorf("fig3 %s/%s/%s: %w", ds, family, method.label, err)
					}
					sum += res.Ratio()
				}
				out.Cells = append(out.Cells, Fig3Cell{
					Dataset: ds, Compressor: family, Method: method.label, Ratio: sum / float64(len(snaps)),
				})
			}
		}
	}
	return out, nil
}

// Ratio looks up one cell's ratio (testing helper).
func (r *Fig3Result) Ratio(ds, comp, method string) (float64, bool) {
	for _, c := range r.Cells {
		if c.Dataset == ds && c.Compressor == comp && c.Method == method {
			return c.Ratio, true
		}
	}
	return 0, false
}

// Render implements Renderer.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3: compression ratios, projection-based methods (avg over %d outputs)\n\n", r.Snapshots)
	var rows [][]string
	for _, ds := range []string{"Heat3d", "Laplace"} {
		for _, comp := range fig3Compressors() {
			row := []string{fmt.Sprintf("%s+%s", ds, strings.ToUpper(comp))}
			for _, m := range fig3Methods() {
				if v, ok := r.Ratio(ds, comp, m.label); ok {
					row = append(row, f2(v))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
	}
	b.WriteString(table([]string{"setup", "original", "one-base", "multi-base", "duomodel"}, rows))
	return b.String()
}

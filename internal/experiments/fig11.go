package experiments

import (
	"fmt"
	"strings"

	"lrm/internal/compress/zfp"
	"lrm/internal/core"
	"lrm/internal/dataset"
	"lrm/internal/reduce"
	"lrm/internal/stats"
)

// Fig11Point is one point of a rate-distortion curve: compression ratio at
// a measured RMSE for a given ZFP precision.
type Fig11Point struct {
	Precision int
	RMSE      float64
	Ratio     float64
}

// Fig11Curve is one (dataset, method) rate-distortion curve.
type Fig11Curve struct {
	Dataset, Method string
	Points          []Fig11Point
}

// Fig11Result reproduces Fig. 11: compression ratio under equal information
// loss — ZFP's precision swept from 8 to 32 bits for direct compression and
// for PCA/SVD preconditioning, reported as ratio-vs-RMSE curves.
type Fig11Result struct {
	Curves []Fig11Curve
}

func init() {
	registerExperiment("fig11",
		"Fig. 11: compression ratio vs RMSE with ZFP precision swept 8..32 (direct vs PCA vs SVD)",
		func(cfg Config) (Renderer, error) { return RunFig11(cfg) })
}

// fig11Precisions is the sweep grid (the paper varies 8 to 32).
var fig11Precisions = []int{8, 12, 16, 20, 24, 28, 32}

// fig11Methods are the compared strategies.
func fig11Methods() []core.Candidate {
	return []core.Candidate{
		{Label: "original", Model: nil},
		{Label: "pca", Model: reduce.PCA{}},
		{Label: "svd", Model: reduce.SVD{}},
	}
}

// RunFig11 executes the Fig. 11 experiment.
func RunFig11(cfg Config) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	pairs, err := dataset.GenerateAll(cfg.Size)
	if err != nil {
		return nil, err
	}
	out := &Fig11Result{}
	for _, p := range pairs {
		for _, method := range fig11Methods() {
			curve := Fig11Curve{Dataset: p.Name, Method: method.Label}
			for _, prec := range fig11Precisions {
				deltaPrec := prec / 2
				if deltaPrec < 4 {
					deltaPrec = 4
				}
				opts := core.Options{
					Model:      method.Model,
					DataCodec:  zfp.MustNew(prec),
					DeltaCodec: zfp.MustNew(deltaPrec),
				}
				res, err := core.Compress(p.Full, opts)
				if err != nil {
					return nil, fmt.Errorf("fig11 %s/%s/p=%d: %w", p.Name, method.Label, prec, err)
				}
				dec, err := core.Decompress(res.Archive)
				if err != nil {
					return nil, fmt.Errorf("fig11 %s/%s/p=%d decompress: %w", p.Name, method.Label, prec, err)
				}
				curve.Points = append(curve.Points, Fig11Point{
					Precision: prec,
					RMSE:      stats.RMSE(p.Full.Data, dec.Data),
					Ratio:     res.Ratio(),
				})
			}
			out.Curves = append(out.Curves, curve)
		}
	}
	return out, nil
}

// Curve looks up one (dataset, method) curve.
func (r *Fig11Result) Curve(ds, method string) (Fig11Curve, bool) {
	for _, c := range r.Curves {
		if c.Dataset == ds && c.Method == method {
			return c, true
		}
	}
	return Fig11Curve{}, false
}

// BeatsDirectAtMatchedRMSE reports whether `method` achieves a higher ratio
// than direct compression at comparable information loss for the dataset:
// for each direct point, it interpolates the method's ratio at the same
// RMSE and checks for a win anywhere along the curve.
func (r *Fig11Result) BeatsDirectAtMatchedRMSE(ds, method string) bool {
	direct, ok1 := r.Curve(ds, "original")
	m, ok2 := r.Curve(ds, method)
	if !ok1 || !ok2 {
		return false
	}
	for _, dp := range direct.Points {
		if mr, ok := ratioAtRMSE(m.Points, dp.RMSE); ok && mr > dp.Ratio*1.02 {
			return true
		}
	}
	return false
}

// ratioAtRMSE linearly interpolates a curve's ratio at a target RMSE.
// Points must span the target; curves are monotone in precision, with RMSE
// decreasing as precision grows.
func ratioAtRMSE(points []Fig11Point, target float64) (float64, bool) {
	for i := 0; i+1 < len(points); i++ {
		a, b := points[i], points[i+1]
		lo, hi := b.RMSE, a.RMSE // RMSE decreases with precision
		if lo > hi {
			lo, hi = hi, lo
		}
		//lrmlint:ignore floatcmp exact-equality guard against a zero interpolation denominator
		if target >= lo && target <= hi && a.RMSE != b.RMSE {
			t := (a.RMSE - target) / (a.RMSE - b.RMSE)
			return a.Ratio + t*(b.Ratio-a.Ratio), true
		}
	}
	return 0, false
}

// Render implements Renderer.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 11: compression ratio under the same RMSE (ZFP precision 8..32)\n\n")
	for _, ds := range dataset.Names() {
		fmt.Fprintf(&b, "%s\n", ds)
		var rows [][]string
		for _, method := range fig11Methods() {
			c, ok := r.Curve(ds, method.Label)
			if !ok {
				continue
			}
			for _, p := range c.Points {
				rows = append(rows, []string{method.Label, fmt.Sprintf("%d", p.Precision), e2(p.RMSE), f2(p.Ratio)})
			}
		}
		b.WriteString(table([]string{"method", "precision", "RMSE", "ratio"}, rows))
		for _, m := range []string{"pca", "svd"} {
			if r.BeatsDirectAtMatchedRMSE(ds, m) {
				fmt.Fprintf(&b, "  -> %s beats direct at matched RMSE\n", m)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

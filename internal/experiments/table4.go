package experiments

import (
	"fmt"
	"strings"

	"lrm/internal/core"
	"lrm/internal/iosim"
	"lrm/internal/reduce"
	"lrm/internal/sim/heat3d"
)

// Table4Result reproduces Table IV: compression and I/O time for the six
// end-to-end schemes on a Titan/Lustre-shaped platform model, using
// compression throughputs and ratios measured on a Heat3d subdomain.
type Table4Result struct {
	Platform iosim.Config
	Entries  []iosim.Entry
}

func init() {
	registerExperiment("table4",
		"Table IV: end-to-end compression + I/O time (baseline, ZFP, SZ, PCA(ZFP), PCA(SZ), staging)",
		func(cfg Config) (Renderer, error) { return RunTable4(cfg) })
}

// RunTable4 executes the Table IV experiment.
func RunTable4(cfg Config) (*Table4Result, error) {
	cfg = cfg.withDefaults()
	// The measured sample: one rank's Heat3d subdomain.
	hc := heat3d.Default(heatN(cfg.Size))
	hc.Steps = heatSteps(cfg.Size) / 2
	sample := heat3d.Solve(hc)

	zfpData, zfpDelta, err := core.PaperCodecs("zfp")
	if err != nil {
		return nil, err
	}
	szData, szDelta, err := core.PaperCodecs("sz")
	if err != nil {
		return nil, err
	}

	measure := func(name string, opts core.Options) (iosim.Method, error) {
		return iosim.MeasureMethod(name, sample, opts, false)
	}
	zfpM, err := measure("ZFP+I/O", core.Options{DataCodec: zfpData})
	if err != nil {
		return nil, err
	}
	szM, err := measure("SZ+I/O", core.Options{DataCodec: szData})
	if err != nil {
		return nil, err
	}
	pcaZfpM, err := measure("PCA(ZFP)+I/O", core.Options{Model: reduce.PCA{}, DataCodec: zfpData, DeltaCodec: zfpDelta})
	if err != nil {
		return nil, err
	}
	pcaSzM, err := measure("PCA(SZ)+I/O", core.Options{Model: reduce.PCA{}, DataCodec: szData, DeltaCodec: szDelta})
	if err != nil {
		return nil, err
	}

	platform := iosim.TitanLike()
	methods := []iosim.Method{
		iosim.Baseline(),
		zfpM, szM, pcaZfpM, pcaSzM,
		iosim.StagedMethod("Staging+PCA+I/O"),
	}
	entries, err := iosim.EndToEnd(platform, methods)
	if err != nil {
		return nil, err
	}
	return &Table4Result{Platform: platform, Entries: entries}, nil
}

// Entry looks up a row by method name prefix.
func (r *Table4Result) Entry(prefix string) (iosim.Entry, bool) {
	for _, e := range r.Entries {
		if strings.HasPrefix(e.Method, prefix) {
			return e, true
		}
	}
	return iosim.Entry{}, false
}

// Render implements Renderer.
func (r *Table4Result) Render() string {
	var b strings.Builder
	b.WriteString("Table IV: compression and I/O time (modeled platform, measured codecs)\n")
	fmt.Fprintf(&b, "(%d ranks, %.1f GB/rank, PFS %.0f GB/s aggregate, staging link %.1f GB/s)\n\n",
		r.Platform.Ranks, r.Platform.BytesPerRank/1e9,
		r.Platform.AggregateBandwidth/1e9, r.Platform.StagingBandwidth/1e9)
	var rows [][]string
	for _, e := range r.Entries {
		comp := "N/A"
		if e.CompressTime > 0 {
			comp = f2(e.CompressTime)
		}
		rows = append(rows, []string{e.Method, comp, f2(e.IOTime), f2(e.TotalTime)})
	}
	b.WriteString(table([]string{"Method", "Compression time(s)", "I/O time(s)", "Total time(s)"}, rows))
	return b.String()
}

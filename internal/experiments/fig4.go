package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"lrm/internal/core"
	"lrm/internal/dataset"
	"lrm/internal/reduce"
)

// Fig4Point is one scatter point of Fig. 4: a snapshot's original
// compressibility (ZFP ratio of the raw data) against the improvement
// factor achieved by one-base preconditioning.
type Fig4Point struct {
	Dataset     string
	BaseRatio   float64 // x-axis: ZFP ratio of the original data
	Improvement float64 // y-axis: one-base ratio / original ratio
}

// Fig4Result reproduces Fig. 4: compression-ratio improvement vs the
// compressibility of the original data, over the Heat3d and Laplace
// snapshot series.
type Fig4Result struct {
	Points []Fig4Point
}

func init() {
	registerExperiment("fig4",
		"Fig. 4: one-base improvement vs original-data compressibility (ZFP), Heat3d + Laplace snapshots",
		func(cfg Config) (Renderer, error) { return RunFig4(cfg) })
}

// RunFig4 executes the Fig. 4 experiment.
func RunFig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	data, delta, err := core.PaperCodecs("zfp")
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{}
	for _, ds := range []string{"Heat3d", "Laplace"} {
		snaps, err := dataset.Snapshots(ds, cfg.Size, cfg.Snapshots)
		if err != nil {
			return nil, err
		}
		for _, f := range snaps {
			direct, err := core.Compress(f, core.Options{DataCodec: data})
			if err != nil {
				return nil, err
			}
			pre, err := core.Compress(f, core.Options{
				Model: reduce.OneBase{}, DataCodec: data, DeltaCodec: delta,
			})
			if err != nil {
				return nil, err
			}
			out.Points = append(out.Points, Fig4Point{
				Dataset:     ds,
				BaseRatio:   direct.Ratio(),
				Improvement: pre.Ratio() / direct.Ratio(),
			})
		}
	}
	return out, nil
}

// Correlation returns the Pearson correlation between base compressibility
// and improvement — the paper's claim is that it is positive.
func (r *Fig4Result) Correlation() float64 {
	n := float64(len(r.Points))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for _, p := range r.Points {
		sx += p.BaseRatio
		sy += p.Improvement
		sxx += p.BaseRatio * p.BaseRatio
		syy += p.Improvement * p.Improvement
		sxy += p.BaseRatio * p.Improvement
	}
	den := (sxx - sx*sx/n) * (syy - sy*sy/n)
	if den <= 0 {
		return 0
	}
	return (sxy - sx*sy/n) / math.Sqrt(den)
}

// Render implements Renderer.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 4: compression-ratio improvement vs compressibility (one-base, ZFP)\n\n")
	pts := append([]Fig4Point(nil), r.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].BaseRatio < pts[j].BaseRatio })
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{p.Dataset, f2(p.BaseRatio), f2(p.Improvement)})
	}
	b.WriteString(table([]string{"dataset", "ZFP ratio (original)", "improvement (x)"}, rows))
	fmt.Fprintf(&b, "\nPearson correlation (compressibility vs improvement): %.3f\n", r.Correlation())
	return b.String()
}

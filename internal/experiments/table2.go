package experiments

import (
	"fmt"
	"strings"

	"lrm/internal/dataset"
	"lrm/internal/sim/heat3d"
	"lrm/internal/stats"
)

// Table2Result reproduces Table II: the Heat3d full model vs its projected
// 2-D reduced model — problem sizes, step counts, time steps, and the three
// byte-level data characteristics.
type Table2Result struct {
	FullN, ReducedN         int
	FullSteps, ReducedSteps int
	FullDt, ReducedDt       float64
	Full, Reduced           stats.Characteristics
}

func init() {
	registerExperiment("table2",
		"Table II: Heat3d full vs projected 2-D reduced model setup and byte statistics",
		func(cfg Config) (Renderer, error) { return RunTable2(cfg) })
}

// RunTable2 executes the Table II experiment.
func RunTable2(cfg Config) (*Table2Result, error) {
	cfg = cfg.withDefaults()
	n := heatN(cfg.Size)
	hc := heat3d.Default(n)
	hc.Steps = heatSteps(cfg.Size)

	full := heat3d.Solve(hc)
	reduced := heat3d.SolveReduced2D(hc)

	return &Table2Result{
		FullN: hc.N, ReducedN: hc.N,
		FullSteps: hc.Steps, ReducedSteps: heat3d.ReducedSteps(hc),
		FullDt:    0.9 * hc.StabilityDt3D(),
		ReducedDt: 0.9 * hc.StabilityDt2D(),
		Full:      stats.Characterize(full.Bytes()),
		Reduced:   stats.Characterize(reduced.Bytes()),
	}, nil
}

func heatN(size dataset.Size) int {
	switch size {
	case dataset.Small:
		return 24
	case dataset.Medium:
		return 48
	default:
		return 96
	}
}

func heatSteps(size dataset.Size) int {
	switch size {
	case dataset.Small:
		return 80
	case dataset.Medium:
		return 300
	default:
		return 1000
	}
}

// Render implements Renderer.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table II: Heat3d full model and reduced model\n\n")
	rows := [][]string{
		{"Problem size", fmt.Sprintf("%d x %d x %d", r.FullN, r.FullN, r.FullN), fmt.Sprintf("%d x %d", r.ReducedN, r.ReducedN)},
		{"# of steps", fmt.Sprintf("%d", r.FullSteps), fmt.Sprintf("%d", r.ReducedSteps)},
		{"Time step", e2(r.FullDt), e2(r.ReducedDt)},
		{"Byte entropy", f3(r.Full.ByteEntropy), f3(r.Reduced.ByteEntropy)},
		{"Byte mean", f3(r.Full.ByteMean), f3(r.Reduced.ByteMean)},
		{"Serial correlation", f3(r.Full.SerialCorrelation), f3(r.Reduced.SerialCorrelation)},
	}
	b.WriteString(table([]string{"", "Full model", "Reduced model"}, rows))
	return b.String()
}

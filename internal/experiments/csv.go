package experiments

import (
	"fmt"
	"strings"
)

// CSVer is implemented by experiment results that can emit their data in
// machine-readable form for external plotting (the figures are bar charts
// and scatter plots in the paper; `lrmexp -csv <id>` feeds any plotting
// tool).
type CSVer interface {
	CSV() string
}

func csvRows(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV implements CSVer.
func (r *Table2Result) CSV() string {
	return csvRows(
		[]string{"metric", "full", "reduced"},
		[][]string{
			{"problem_size", fmt.Sprint(r.FullN), fmt.Sprint(r.ReducedN)},
			{"steps", fmt.Sprint(r.FullSteps), fmt.Sprint(r.ReducedSteps)},
			{"dt", e2(r.FullDt), e2(r.ReducedDt)},
			{"byte_entropy", f3(r.Full.ByteEntropy), f3(r.Reduced.ByteEntropy)},
			{"byte_mean", f3(r.Full.ByteMean), f3(r.Reduced.ByteMean)},
			{"serial_correlation", f3(r.Full.SerialCorrelation), f3(r.Reduced.SerialCorrelation)},
		})
}

// CSV implements CSVer.
func (r *Fig1Result) CSV() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset,
			f3(row.Full.ByteEntropy), f3(row.Reduced.ByteEntropy),
			f3(row.Full.ByteMean), f3(row.Reduced.ByteMean),
			f3(row.Full.SerialCorrelation), f3(row.Reduced.SerialCorrelation),
			f3(row.CDFDistance),
		})
	}
	return csvRows([]string{
		"dataset", "ent_full", "ent_reduced", "mean_full", "mean_reduced",
		"corr_full", "corr_reduced", "ks_distance"}, rows)
}

// CSV implements CSVer.
func (r *Fig3Result) CSV() string {
	var rows [][]string
	for _, c := range r.Cells {
		rows = append(rows, []string{c.Dataset, c.Compressor, c.Method, f3(c.Ratio)})
	}
	return csvRows([]string{"dataset", "compressor", "method", "ratio"}, rows)
}

// CSV implements CSVer.
func (r *Fig4Result) CSV() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{p.Dataset, f3(p.BaseRatio), f3(p.Improvement)})
	}
	return csvRows([]string{"dataset", "zfp_ratio_original", "improvement"}, rows)
}

func (s *DimredSweep) csv() string {
	var rows [][]string
	for _, c := range s.Cells {
		rows = append(rows, []string{
			c.Dataset, c.Method, c.Compressor,
			f3(c.Ratio), e2(c.RMSE), fmt.Sprint(c.RepBytes),
			fmt.Sprintf("%.6f", c.CompressSec), fmt.Sprintf("%.6f", c.DecompressSec),
		})
	}
	return csvRows([]string{
		"dataset", "method", "compressor", "ratio", "rmse", "rep_bytes",
		"compress_sec", "decompress_sec"}, rows)
}

// CSV implements CSVer.
func (r *Fig6Result) CSV() string { return r.Sweep.csv() }

// CSV implements CSVer.
func (r *Fig9Result) CSV() string { return r.Sweep.csv() }

// CSV implements CSVer.
func (r *Fig10Result) CSV() string { return r.Sweep.csv() }

// CSV implements CSVer.
func (r *Fig12Result) CSV() string { return r.Sweep.csv() }

func spectraCSV(rows []SpectrumRow) string {
	var out [][]string
	for _, r := range rows {
		for i, p := range r.Proportions {
			out = append(out, []string{r.Dataset, fmt.Sprint(i + 1), f3(p)})
		}
	}
	return csvRows([]string{"dataset", "component", "proportion"}, out)
}

// CSV implements CSVer.
func (r *Fig7Result) CSV() string { return spectraCSV(r.Rows) }

// CSV implements CSVer.
func (r *Fig8Result) CSV() string { return spectraCSV(r.Rows) }

// CSV implements CSVer.
func (r *Fig11Result) CSV() string {
	var rows [][]string
	for _, c := range r.Curves {
		for _, p := range c.Points {
			rows = append(rows, []string{
				c.Dataset, c.Method, fmt.Sprint(p.Precision), e2(p.RMSE), f3(p.Ratio),
			})
		}
	}
	return csvRows([]string{"dataset", "method", "precision", "rmse", "ratio"}, rows)
}

// CSV implements CSVer.
func (r *Table4Result) CSV() string {
	var rows [][]string
	for _, e := range r.Entries {
		rows = append(rows, []string{
			strings.ReplaceAll(e.Method, ",", ";"),
			fmt.Sprintf("%.3f", e.CompressTime),
			fmt.Sprintf("%.3f", e.IOTime),
			fmt.Sprintf("%.3f", e.TotalTime),
		})
	}
	return csvRows([]string{"method", "compress_sec", "io_sec", "total_sec"}, rows)
}

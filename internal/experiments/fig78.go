package experiments

import (
	"fmt"
	"strings"

	"lrm/internal/dataset"
	"lrm/internal/grid"
	"lrm/internal/reduce"
)

// SpectrumRow is one dataset's leading-component proportions.
type SpectrumRow struct {
	Dataset     string
	Proportions []float64
}

// Fig7Result reproduces Fig. 7: the proportion of variance captured by the
// leading principal components per dataset. The paper's reading: the more
// dominant PC1 is, the more PCA preconditioning helps.
type Fig7Result struct {
	Rows []SpectrumRow
}

// Fig8Result reproduces Fig. 8: the proportion of the total singular-value
// mass per leading singular value.
type Fig8Result struct {
	Rows []SpectrumRow
}

const spectrumComponents = 8

func init() {
	registerExperiment("fig7",
		"Fig. 7: PCA proportion of variance of the leading principal components, 9 datasets",
		func(cfg Config) (Renderer, error) { return RunFig7(cfg) })
	registerExperiment("fig8",
		"Fig. 8: SVD proportion of the leading singular values, 9 datasets",
		func(cfg Config) (Renderer, error) { return RunFig8(cfg) })
}

// RunFig7 executes the Fig. 7 experiment.
func RunFig7(cfg Config) (*Fig7Result, error) {
	rows, err := spectra(cfg, reduce.PCASpectrum)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Rows: rows}, nil
}

// RunFig8 executes the Fig. 8 experiment.
func RunFig8(cfg Config) (*Fig8Result, error) {
	rows, err := spectra(cfg, reduce.SVDSpectrum)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Rows: rows}, nil
}

func spectra(cfg Config, fn func(f *grid.Field, maxN int) ([]float64, error)) ([]SpectrumRow, error) {
	cfg = cfg.withDefaults()
	pairs, err := dataset.GenerateAll(cfg.Size)
	if err != nil {
		return nil, err
	}
	var rows []SpectrumRow
	for _, p := range pairs {
		spec, err := fn(p.Full, spectrumComponents)
		if err != nil {
			return nil, fmt.Errorf("spectrum %s: %w", p.Name, err)
		}
		rows = append(rows, SpectrumRow{Dataset: p.Name, Proportions: spec})
	}
	return rows, nil
}

func renderSpectra(title, unit string, rows []SpectrumRow) string {
	var b strings.Builder
	b.WriteString(title + "\n\n")
	header := []string{"dataset"}
	for i := 1; i <= spectrumComponents; i++ {
		header = append(header, fmt.Sprintf("%s%d", unit, i))
	}
	var out [][]string
	for _, r := range rows {
		row := []string{r.Dataset}
		for i := 0; i < spectrumComponents; i++ {
			if i < len(r.Proportions) {
				row = append(row, f3(r.Proportions[i]))
			} else {
				row = append(row, "-")
			}
		}
		out = append(out, row)
	}
	b.WriteString(table(header, out))
	return b.String()
}

// Render implements Renderer.
func (r *Fig7Result) Render() string {
	return renderSpectra("Fig. 7: PCA proportion of variance of the primary components", "PC", r.Rows)
}

// Render implements Renderer.
func (r *Fig8Result) Render() string {
	return renderSpectra("Fig. 8: SVD proportion of the singular values", "SV", r.Rows)
}

package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"lrm/internal/grid"
	"lrm/internal/reduce"
)

// Table3Row is one empirical complexity measurement: the reduce time of a
// model at a given matricized size, alongside the representation size.
type Table3Row struct {
	Method   string
	M, N     int
	Seconds  float64
	RepBytes int
}

// Table3Result realises Table III empirically: the paper states the
// factorisation complexities (PCA O(mn^2+n^3), SVD O(m^2n+mn^2+n^3),
// Wavelet O(4mn^2 log n)) and the storage contents; this experiment
// measures reduce wall time and representation size across growing matrix
// sizes and verifies the orderings those formulas imply (SVD slowest, the
// wavelet transform cheapest; SVD stores three matrices, PCA two).
type Table3Result struct {
	Rows []Table3Row
}

func init() {
	registerExperiment("table3",
		"Table III: empirical complexity/storage of PCA vs SVD vs Wavelet across matrix sizes",
		func(cfg Config) (Renderer, error) { return RunTable3(cfg) })
}

// table3Sizes returns the (m, n) sweep for a config scale.
func table3Sizes(cfg Config) [][2]int {
	base := [][2]int{{256, 32}, {1024, 48}, {2048, 64}}
	if cfg.Size > 0 {
		base = append(base, [2]int{8192, 96})
	}
	return base
}

// RunTable3 executes the Table III experiment.
func RunTable3(cfg Config) (*Table3Result, error) {
	cfg = cfg.withDefaults()
	out := &Table3Result{}
	for _, sz := range table3Sizes(cfg) {
		m, n := sz[0], sz[1]
		f := syntheticMatrix(m, n)
		for _, model := range []reduce.Model{reduce.PCA{}, reduce.SVD{}, reduce.Wavelet{}} {
			// Best of two runs to damp scheduler noise.
			best := -1.0
			var rep *reduce.Rep
			for trial := 0; trial < 2; trial++ {
				start := time.Now()
				r, err := model.Reduce(f)
				if err != nil {
					return nil, fmt.Errorf("table3 %s %dx%d: %w", model.Name(), m, n, err)
				}
				sec := time.Since(start).Seconds()
				if best < 0 || sec < best {
					best = sec
					rep = r
				}
			}
			out.Rows = append(out.Rows, Table3Row{
				Method: modelBase(model.Name()), M: m, N: n,
				Seconds: best, RepBytes: rep.SizeBytes(),
			})
		}
	}
	return out, nil
}

// syntheticMatrix builds a moderately structured m x n field: a few strong
// modes plus noise-scale detail, so every model has real work to do.
func syntheticMatrix(m, n int) *grid.Field {
	f := grid.New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			x := float64(i) / float64(m)
			y := float64(j) / float64(n)
			f.Data[i*n+j] = 10*math.Sin(2*math.Pi*x)*math.Sin(4*math.Pi*y) +
				3*math.Sin(2*math.Pi*(3*x+y)) + 0.2*math.Sin(2*math.Pi*(17*x*y+0.3))
		}
	}
	return f
}

// Time looks up the reduce seconds for a (method, m) pair.
func (r *Table3Result) Time(method string, m int) (float64, bool) {
	for _, row := range r.Rows {
		if row.Method == method && row.M == m {
			return row.Seconds, true
		}
	}
	return 0, false
}

// Render implements Renderer.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table III (empirical): reduce time and representation size\n")
	b.WriteString("(paper complexities: PCA O(mn^2+n^3), SVD O(m^2n+mn^2+n^3), Wavelet O(4mn^2 log n))\n\n")
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%dx%d", row.M, row.N), row.Method,
			fmt.Sprintf("%.4f", row.Seconds), fmt.Sprint(row.RepBytes),
		})
	}
	b.WriteString(table([]string{"matrix", "method", "reduce(s)", "rep bytes"}, rows))
	return b.String()
}

// CSV implements CSVer.
func (r *Table3Result) CSV() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Method, fmt.Sprint(row.M), fmt.Sprint(row.N),
			fmt.Sprintf("%.6f", row.Seconds), fmt.Sprint(row.RepBytes),
		})
	}
	return csvRows([]string{"method", "m", "n", "reduce_sec", "rep_bytes"}, rows)
}

// modelBase strips a model name's parameter suffix: "pca(e=0.95)" -> "pca".
func modelBase(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '(' {
			return name[:i]
		}
	}
	return name
}

package experiments

import (
	"strings"

	"lrm/internal/dataset"
	"lrm/internal/stats"
)

// Fig1Row is one dataset's full-vs-reduced data characteristics (Fig. 1).
type Fig1Row struct {
	Dataset         string
	Full, Reduced   stats.Characteristics
	CDFDistance     float64 // KS distance between normalised value CDFs
	FullCDF, RedCDF [][2]float64
}

// Fig1Result reproduces Fig. 1 over the nine datasets.
type Fig1Result struct {
	Rows []Fig1Row
}

func init() {
	registerExperiment("fig1",
		"Fig. 1: data characteristics (CDF, byte entropy/mean, serial correlation) of full vs reduced models, 9 datasets",
		func(cfg Config) (Renderer, error) { return RunFig1(cfg) })
}

// RunFig1 executes the Fig. 1 experiment.
func RunFig1(cfg Config) (*Fig1Result, error) {
	cfg = cfg.withDefaults()
	pairs, err := dataset.GenerateAll(cfg.Size)
	if err != nil {
		return nil, err
	}
	out := &Fig1Result{}
	for _, p := range pairs {
		row := Fig1Row{
			Dataset: p.Name,
			Full:    stats.Characterize(p.Full.Bytes()),
			Reduced: stats.Characterize(p.Reduced.Bytes()),
		}
		fn := normalizeRange(p.Full.Data)
		rn := normalizeRange(p.Reduced.Data)
		row.CDFDistance = stats.CDFDistance(fn, rn)
		row.FullCDF = cdfPoints(fn, 32)
		row.RedCDF = cdfPoints(rn, 32)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// normalizeRange maps values to [0,1] so full and reduced CDF shapes can be
// compared even when amplitudes differ.
func normalizeRange(vals []float64) []float64 {
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]float64, len(vals))
	if hi > lo {
		for i, v := range vals {
			out[i] = (v - lo) / (hi - lo)
		}
	}
	return out
}

func cdfPoints(vals []float64, n int) [][2]float64 {
	xs, ps := stats.CDF(vals, n)
	out := make([][2]float64, len(xs))
	for i := range xs {
		out[i] = [2]float64{xs[i], ps[i]}
	}
	return out
}

// Render implements Renderer.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 1: data characteristics of full model vs reduced model\n")
	b.WriteString("(ent = byte entropy, mean = byte mean, corr = serial correlation,\n")
	b.WriteString(" KS = distance between normalised value CDFs; small KS = similar distributions)\n\n")
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset,
			f3(row.Full.ByteEntropy), f3(row.Reduced.ByteEntropy),
			f2(row.Full.ByteMean), f2(row.Reduced.ByteMean),
			f3(row.Full.SerialCorrelation), f3(row.Reduced.SerialCorrelation),
			f3(row.CDFDistance),
		})
	}
	b.WriteString(table(
		[]string{"dataset", "ent(full)", "ent(red)", "mean(full)", "mean(red)", "corr(full)", "corr(red)", "KS"},
		rows))
	return b.String()
}

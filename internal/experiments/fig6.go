package experiments

import (
	"fmt"
	"strings"
	"time"

	"lrm/internal/core"
	"lrm/internal/dataset"
	"lrm/internal/reduce"
	"lrm/internal/stats"
)

// DimredCell is one measurement of the dimension-reduction sweep shared by
// Figs. 6, 9, 10, and 12: a (dataset, method, compressor) combination's
// compression ratio, end-to-end RMSE, reduced-representation size, and
// compression/decompression wall times.
type DimredCell struct {
	Dataset, Method, Compressor string
	Ratio                       float64
	RMSE                        float64
	RepBytes                    int
	CompressSec, DecompressSec  float64
}

// DimredSweep is the full grid of measurements.
type DimredSweep struct {
	Cells []DimredCell
}

// dimredMethods are the Section V models plus the direct baseline.
func dimredMethods() []core.Candidate {
	return []core.Candidate{
		{Label: "original", Model: nil},
		{Label: "pca", Model: reduce.PCA{}},
		{Label: "svd", Model: reduce.SVD{}},
		{Label: "wavelet", Model: reduce.Wavelet{}},
	}
}

func dimredCompressors() []string { return []string{"zfp", "sz"} }

// runDimredSweep measures every combination once on each dataset's full
// field.
func runDimredSweep(cfg Config) (*DimredSweep, error) {
	cfg = cfg.withDefaults()
	pairs, err := dataset.GenerateAll(cfg.Size)
	if err != nil {
		return nil, err
	}
	sweep := &DimredSweep{}
	for _, p := range pairs {
		for _, family := range dimredCompressors() {
			data, delta, err := core.PaperCodecs(family)
			if err != nil {
				return nil, err
			}
			for _, method := range dimredMethods() {
				opts := core.Options{Model: method.Model, DataCodec: data, DeltaCodec: delta}
				start := time.Now()
				res, err := core.Compress(p.Full, opts)
				if err != nil {
					return nil, fmt.Errorf("dimred %s/%s/%s: %w", p.Name, family, method.Label, err)
				}
				compressSec := time.Since(start).Seconds()

				start = time.Now()
				dec, err := core.Decompress(res.Archive)
				if err != nil {
					return nil, fmt.Errorf("dimred %s/%s/%s decompress: %w", p.Name, family, method.Label, err)
				}
				decompressSec := time.Since(start).Seconds()

				sweep.Cells = append(sweep.Cells, DimredCell{
					Dataset: p.Name, Method: method.Label, Compressor: family,
					Ratio:         res.Ratio(),
					RMSE:          stats.RMSE(p.Full.Data, dec.Data),
					RepBytes:      res.RepBytes(),
					CompressSec:   compressSec,
					DecompressSec: decompressSec,
				})
			}
		}
	}
	return sweep, nil
}

// Cell looks up one measurement.
func (s *DimredSweep) Cell(ds, method, comp string) (DimredCell, bool) {
	for _, c := range s.Cells {
		if c.Dataset == ds && c.Method == method && c.Compressor == comp {
			return c, true
		}
	}
	return DimredCell{}, false
}

// --- Fig. 6: compression ratios ---

// Fig6Result reproduces Fig. 6: compression ratios of PCA/SVD/Wavelet
// preconditioning vs direct compression under ZFP and SZ, per dataset.
type Fig6Result struct{ Sweep *DimredSweep }

func init() {
	registerExperiment("fig6",
		"Fig. 6: compression ratios of PCA/SVD/Wavelet preconditioning vs direct, 9 datasets x ZFP/SZ",
		func(cfg Config) (Renderer, error) { return RunFig6(cfg) })
}

// RunFig6 executes the Fig. 6 experiment.
func RunFig6(cfg Config) (*Fig6Result, error) {
	s, err := runDimredSweep(cfg)
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Sweep: s}, nil
}

// Render implements Renderer.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 6: compression ratios (preconditioned vs direct)\n\n")
	header := []string{"dataset"}
	for _, comp := range dimredCompressors() {
		for _, m := range dimredMethods() {
			header = append(header, fmt.Sprintf("%s+%s", m.Label, strings.ToUpper(comp)))
		}
	}
	var rows [][]string
	for _, ds := range dataset.Names() {
		row := []string{ds}
		for _, comp := range dimredCompressors() {
			for _, m := range dimredMethods() {
				if c, ok := r.Sweep.Cell(ds, m.Label, comp); ok {
					row = append(row, f2(c.Ratio))
				} else {
					row = append(row, "-")
				}
			}
		}
		rows = append(rows, row)
	}
	b.WriteString(table(header, rows))
	return b.String()
}

// --- Fig. 9: reduced-representation sizes ---

// Fig9Result reproduces Fig. 9: the stored size of each reduced
// representation per dataset (Wavelet's sparse matrix is the outlier).
type Fig9Result struct{ Sweep *DimredSweep }

func init() {
	registerExperiment("fig9",
		"Fig. 9: size of the reduced representations (PCA, SVD, Wavelet) per dataset",
		func(cfg Config) (Renderer, error) { return RunFig9(cfg) })
}

// RunFig9 executes the Fig. 9 experiment.
func RunFig9(cfg Config) (*Fig9Result, error) {
	s, err := runDimredSweep(cfg)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Sweep: s}, nil
}

// Render implements Renderer.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 9: size of reduced representations (bytes, stored compressed; zfp pipeline)\n\n")
	var rows [][]string
	for _, ds := range dataset.Names() {
		row := []string{ds}
		for _, m := range []string{"pca", "svd", "wavelet"} {
			if c, ok := r.Sweep.Cell(ds, m, "zfp"); ok {
				row = append(row, fmt.Sprintf("%d", c.RepBytes))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	b.WriteString(table([]string{"dataset", "PCA", "SVD", "Wavelet"}, rows))
	return b.String()
}

// --- Fig. 10: RMSE comparison ---

// Fig10Result reproduces Fig. 10: the end-to-end RMSE of every
// method x compressor combination against direct compression.
type Fig10Result struct{ Sweep *DimredSweep }

func init() {
	registerExperiment("fig10",
		"Fig. 10: RMSE of preconditioned vs direct compression, 9 datasets x ZFP/SZ",
		func(cfg Config) (Renderer, error) { return RunFig10(cfg) })
}

// RunFig10 executes the Fig. 10 experiment.
func RunFig10(cfg Config) (*Fig10Result, error) {
	s, err := runDimredSweep(cfg)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Sweep: s}, nil
}

// Render implements Renderer.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10: RMSE introduced by each method (lower is better)\n\n")
	header := []string{"dataset"}
	for _, comp := range dimredCompressors() {
		for _, m := range dimredMethods() {
			header = append(header, fmt.Sprintf("%s+%s", m.Label, strings.ToUpper(comp)))
		}
	}
	var rows [][]string
	for _, ds := range dataset.Names() {
		row := []string{ds}
		for _, comp := range dimredCompressors() {
			for _, m := range dimredMethods() {
				if c, ok := r.Sweep.Cell(ds, m.Label, comp); ok {
					row = append(row, e2(c.RMSE))
				} else {
					row = append(row, "-")
				}
			}
		}
		rows = append(rows, row)
	}
	b.WriteString(table(header, rows))
	return b.String()
}

// --- Fig. 12: compression/decompression overhead ---

// Fig12Result reproduces Fig. 12: mean compression and decompression time
// per method, normalised to direct ZFP.
type Fig12Result struct {
	Sweep *DimredSweep
}

func init() {
	registerExperiment("fig12",
		"Fig. 12: compression/decompression overhead of PCA/SVD/Wavelet vs direct (normalised to direct ZFP)",
		func(cfg Config) (Renderer, error) { return RunFig12(cfg) })
}

// RunFig12 executes the Fig. 12 experiment.
func RunFig12(cfg Config) (*Fig12Result, error) {
	s, err := runDimredSweep(cfg)
	if err != nil {
		return nil, err
	}
	return &Fig12Result{Sweep: s}, nil
}

// MeanTimes returns the average compression and decompression seconds for a
// (method, compressor) pair across datasets.
func (r *Fig12Result) MeanTimes(method, comp string) (compressSec, decompressSec float64) {
	n := 0
	for _, c := range r.Sweep.Cells {
		if c.Method == method && c.Compressor == comp {
			compressSec += c.CompressSec
			decompressSec += c.DecompressSec
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return compressSec / float64(n), decompressSec / float64(n)
}

// Render implements Renderer.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 12: average compression/decompression time across datasets\n")
	b.WriteString("(xC, xD columns are normalised to direct ZFP)\n\n")
	baseC, baseD := r.MeanTimes("original", "zfp")
	var rows [][]string
	for _, comp := range dimredCompressors() {
		for _, m := range dimredMethods() {
			c, d := r.MeanTimes(m.Label, comp)
			row := []string{fmt.Sprintf("%s+%s", m.Label, strings.ToUpper(comp)),
				fmt.Sprintf("%.4f", c), fmt.Sprintf("%.4f", d)}
			if baseC > 0 && baseD > 0 {
				row = append(row, f2(c/baseC), f2(d/baseD))
			} else {
				row = append(row, "-", "-")
			}
			rows = append(rows, row)
		}
	}
	b.WriteString(table([]string{"method", "compress(s)", "decompress(s)", "xC", "xD"}, rows))
	return b.String()
}

package faultinject_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lrm/internal/compress"
	"lrm/internal/compress/fpc"
	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
	"lrm/internal/core"
	"lrm/internal/faultinject"
	"lrm/internal/huffman"
	"lrm/internal/parallel"
)

// sweepAllocCap is the decode allocation cap active during the sweep. It is
// far below the production default so the sweep proves length-field bombs
// are rejected by validation, not absorbed by a huge budget — yet roomy
// enough for every legitimate corpus decode (the largest is fpc's 16 KiB
// predictor tables at level 10).
const sweepAllocCap = 1 << 20

// sweepAllocBudget bounds the total allocation any single mutant decode may
// perform: several capped allocations plus flate scratch, nowhere near the
// gigabytes an unchecked dims or length bomb would claim.
const sweepAllocBudget = 32 << 20

// decoderForCorpus maps a corpus file name to the serial decoder that owns
// that archive format. Serial (workers = 1) keeps the harness's allocation
// accounting honest.
func decoderForCorpus(t *testing.T, name string) faultinject.DecodeFunc {
	t.Helper()
	serial := core.DecompressOpts{Parallel: parallel.Config{Workers: 1}}
	switch {
	case strings.HasPrefix(name, "sz-"):
		c := sz.MustNew(sz.Abs, 1e-4).WithWorkers(1)
		return func(b []byte) error { _, err := c.Decompress(b); return err }
	case strings.HasPrefix(name, "zfp-"):
		c := zfp.MustNew(16).WithWorkers(1)
		return func(b []byte) error { _, err := c.Decompress(b); return err }
	case strings.HasPrefix(name, "fpc"):
		c := fpc.MustNew(16)
		return func(b []byte) error { _, err := c.Decompress(b); return err }
	case strings.HasPrefix(name, "huffman"):
		return func(b []byte) error { _, err := huffman.Decode(b); return err }
	case strings.HasPrefix(name, "lrmc"):
		// Chunked containers are decoded both fail-fast and degraded: the
		// partial path must uphold the same no-panic/no-bomb contract.
		return func(b []byte) error {
			_, strictErr := core.DecompressWithOpts(b, serial)
			p, partialErr := core.DecompressChunkedPartialWithOpts(b, serial)
			if partialErr != nil {
				return partialErr
			}
			if !p.Complete() {
				// Surface the first chunk error so the harness can check
				// its classification; framing errors arrive via strictErr.
				if len(p.Errors) > 0 {
					return p.Errors[0]
				}
				return strictErr
			}
			return strictErr
		}
	case strings.HasPrefix(name, "lrms"):
		return func(b []byte) error { _, err := core.DecompressSeries(b); return err }
	case strings.HasPrefix(name, "lrm1"):
		return func(b []byte) error { _, err := core.DecompressWithOpts(b, serial); return err }
	default:
		t.Fatalf("no decoder mapped for corpus entry %q", name)
		return nil
	}
}

// TestSweepCorpus is the tier-1.5 hardening gate: every mutation of every
// corpus archive must decode cleanly or fail with a classified error —
// never panic, never allocate past the cap.
func TestSweepCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus missing (regenerate with LRM_GEN_CORPUS=1): %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("corpus directory is empty (regenerate with LRM_GEN_CORPUS=1)")
	}
	prev := compress.SetDecodeAllocCap(sweepAllocCap)
	defer compress.SetDecodeAllocCap(prev)
	for _, e := range entries {
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			decode := decoderForCorpus(t, name)
			if err := decode(data); err != nil {
				t.Fatalf("pristine archive fails to decode under the sweep cap: %v", err)
			}
			rep := faultinject.Sweep(data, decode, faultinject.Options{MaxVarintSites: 64})
			for _, f := range rep.Failures {
				t.Errorf("contract violation: %s", f)
			}
			if rep.Errored == 0 {
				t.Error("sweep rejected no mutants; harness is not exercising the decoder")
			}
			if rep.MaxAllocBytes > sweepAllocBudget {
				t.Errorf("a single decode allocated %d bytes (budget %d)", rep.MaxAllocBytes, sweepAllocBudget)
			}
			t.Logf("%d mutants: %d rejected, %d clean, max alloc %d bytes",
				rep.Mutations, rep.Errored, rep.Clean, rep.MaxAllocBytes)
		})
	}
}

package faultinject_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lrm/internal/compress"
	"lrm/internal/core"
	"lrm/internal/faultinject"
	"lrm/internal/obs"
	"lrm/internal/parallel"
)

// TestPartialDecodeMetricsUnderSweep pins the degraded-mode observability
// contract on the LRMC corpus: a pristine decode attributes one span with
// byte volumes to every chunk and reports zero failures, and for every
// sweep mutant that reaches the per-chunk decode loop the core.chunk_errors
// counter delta equals the ChunkErrors the Partial reports — the metrics a
// recovery dashboard would watch cannot drift from the API's error report.
func TestPartialDecodeMetricsUnderSweep(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus missing (regenerate with LRM_GEN_CORPUS=1): %v", err)
	}
	prevEnabled := obs.SetEnabled(true)
	defer func() {
		obs.SetEnabled(prevEnabled)
		obs.Reset()
	}()
	prevCap := compress.SetDecodeAllocCap(sweepAllocCap)
	defer compress.SetDecodeAllocCap(prevCap)

	serial := core.DecompressOpts{Parallel: parallel.Config{Workers: 1}}
	chunkErrors := obs.GetCounter("core.chunk_errors")
	chunksDecoded := obs.GetCounter("core.chunks_decoded")

	tested := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "lrmc") {
			continue
		}
		tested++
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}

			// Pristine decode: every chunk gets a span with byte attribution,
			// the decoded counter matches the chunk count, no errors counted.
			obs.Reset()
			p, err := core.DecompressChunkedPartialWithOpts(data, serial)
			if err != nil {
				t.Fatalf("pristine archive fails to decode: %v", err)
			}
			if !p.Complete() {
				t.Fatalf("pristine archive decoded incomplete: %v", p.Errors)
			}
			snap := obs.Snapshot()
			if got := snap.Counters["stage.core.chunk_decode.calls"]; got != int64(p.Chunks) {
				t.Errorf("chunk_decode spans recorded %d calls, want %d", got, p.Chunks)
			}
			in := snap.Counters["stage.core.chunk_decode.bytes_in"]
			out := snap.Counters["stage.core.chunk_decode.bytes_out"]
			if in <= 0 || out <= 0 {
				t.Errorf("chunk_decode spans lack byte attribution: bytes_in %d, bytes_out %d", in, out)
			}
			if got := chunksDecoded.Value(); got != int64(p.Chunks) {
				t.Errorf("chunks_decoded = %d, want %d", got, p.Chunks)
			}
			if got := chunkErrors.Value(); got != 0 {
				t.Errorf("chunk_errors = %d on a pristine decode", got)
			}

			// Sweep: the failed-chunk counter must march in lockstep with the
			// Partial's error report on every mutant that frames successfully.
			reached := 0
			decode := func(b []byte) error {
				before := chunkErrors.Value()
				p, partialErr := core.DecompressChunkedPartialWithOpts(b, serial)
				if partialErr != nil {
					// Header/framing rejection: no chunk was attempted, so
					// the counter must not have moved.
					if d := chunkErrors.Value() - before; d != 0 {
						t.Errorf("chunk_errors moved by %d on a framing rejection", d)
					}
					return partialErr
				}
				reached++
				if d := chunkErrors.Value() - before; d != int64(len(p.Errors)) {
					t.Errorf("chunk_errors delta %d, but Partial reports %d failed chunks", d, len(p.Errors))
				}
				if len(p.Errors) > 0 {
					return p.Errors[0]
				}
				if p.Trailing > 0 {
					// Trailing garbage is not a chunk failure; report it the
					// way the strict decoder classifies it.
					_, strictErr := core.DecompressWithOpts(b, serial)
					return strictErr
				}
				return nil
			}
			rep := faultinject.Sweep(data, decode, faultinject.Options{MaxVarintSites: 64})
			for _, f := range rep.Failures {
				t.Errorf("contract violation: %s", f)
			}
			if reached == 0 {
				t.Error("no mutant exercised the per-chunk decode path")
			}
			t.Logf("%d mutants, %d reached chunk decode, final chunk_errors %d",
				rep.Mutations, reached, chunkErrors.Value())
		})
	}
	if tested == 0 {
		t.Fatal("corpus has no lrmc entries; the partial path was not exercised")
	}
}

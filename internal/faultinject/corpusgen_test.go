package faultinject_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"lrm/internal/compress/fpc"
	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
	"lrm/internal/core"
	"lrm/internal/grid"
	"lrm/internal/huffman"
	"lrm/internal/reduce"
)

// corpusField is the deterministic source field every corpus archive
// encodes: small enough to keep the exhaustive bit-flip sweep fast, smooth
// enough to be a realistic codec input.
func corpusField() *grid.Field {
	f := grid.New(12, 8)
	for j := 0; j < 12; j++ {
		for i := 0; i < 8; i++ {
			f.Set2(math.Sin(float64(j)/3)+0.5*math.Cos(float64(i)/2), j, i)
		}
	}
	return f
}

// buildCorpus returns every corpus entry by name. The sweep test decodes
// each name with the decoder its prefix selects (see decoderForCorpus).
func buildCorpus(t *testing.T) map[string][]byte {
	t.Helper()
	f := corpusField()
	out := map[string][]byte{}
	codec := func(name string, c interface {
		Compress(*grid.Field) ([]byte, error)
	}) {
		enc, err := c.Compress(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = enc
	}
	codec("sz-abs.bin", sz.MustNew(sz.Abs, 1e-4))
	codec("sz-rel.bin", sz.MustNew(sz.ValueRangeRel, 1e-4))
	codec("sz-pwrel.bin", sz.MustNew(sz.PointwiseRel, 1e-3))
	codec("zfp-p.bin", zfp.MustNew(12))
	codec("zfp-a.bin", zfp.MustNewAccuracy(1e-3))
	codec("zfp-r.bin", zfp.MustNewRate(8))
	codec("fpc.bin", fpc.MustNew(10))

	symbols := make([]int, 300)
	for i := range symbols {
		symbols[i] = (i*i)%23 - 11
	}
	out["huffman.bin"] = huffman.Encode(symbols)

	direct, err := core.Compress(f, core.Options{DataCodec: zfp.MustNew(12)})
	if err != nil {
		t.Fatal(err)
	}
	out["lrm1-direct.bin"] = direct.Archive

	precond, err := core.Compress(f, core.Options{
		Model: reduce.OneBase{}, DataCodec: zfp.MustNew(12), DeltaCodec: zfp.MustNew(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	out["lrm1-precond.bin"] = precond.Archive

	chunked, err := core.CompressChunked(f, core.Options{DataCodec: zfp.MustNew(12)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["lrmc-zfp.bin"] = chunked.Archive

	chunkedPre, err := core.CompressChunked(f, core.Options{
		Model: reduce.OneBase{}, DataCodec: sz.MustNew(sz.Abs, 1e-4),
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out["lrmc-precond.bin"] = chunkedPre.Archive

	frames := []*grid.Field{f, f.Clone(), f.Clone()}
	for i := range frames[1].Data {
		frames[1].Data[i] += 0.01
		frames[2].Data[i] += 0.02
	}
	series, err := core.CompressSeries(frames, core.Options{DataCodec: zfp.MustNew(12)})
	if err != nil {
		t.Fatal(err)
	}
	out["lrms.bin"] = series.Archive
	return out
}

// TestGenerateCorpus regenerates the checked-in corpus. The files are
// committed so the sweep is stable across format changes being developed:
// set LRM_GEN_CORPUS=1 after intentionally changing an archive format.
func TestGenerateCorpus(t *testing.T) {
	if os.Getenv("LRM_GEN_CORPUS") == "" {
		t.Skip("set LRM_GEN_CORPUS=1 to regenerate testdata/corpus")
	}
	dir := filepath.Join("testdata", "corpus")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range buildCorpus(t) {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorpusCurrent fails when the checked-in corpus drifts from what the
// current encoders produce, pointing at the regeneration knob.
func TestCorpusCurrent(t *testing.T) {
	for name, want := range buildCorpus(t) {
		got, err := os.ReadFile(filepath.Join("testdata", "corpus", name))
		if err != nil {
			t.Fatalf("corpus entry missing (regenerate with LRM_GEN_CORPUS=1): %v", err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: checked-in corpus differs from current encoder output (regenerate with LRM_GEN_CORPUS=1)", name)
		}
	}
}

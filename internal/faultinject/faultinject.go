// Package faultinject is a deterministic archive-mutation harness for the
// decode paths of this repository. It takes a known-good archive and a
// decoder, applies an exhaustive family of mutations — single-bit flips,
// truncation at every byte offset, maximal-varint bombs, container-magic
// splices, and chunk-record surgery on LRMC containers — and checks the
// decode contract on every mutant:
//
//   - never panic;
//   - either decode cleanly or fail with an error wrapping
//     compress.ErrCorrupt or compress.ErrTruncated;
//   - never allocate beyond the configured decode cap (the harness records
//     the largest per-decode allocation for the caller to assert against).
//
// The harness is pure mechanism: it knows nothing about specific codecs, so
// any decoder — codec-level or container-level — can be swept by adapting
// it to a DecodeFunc.
package faultinject

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"lrm/internal/compress"
)

// DecodeFunc adapts one decoder for the harness; the decoded value is
// irrelevant, only the error contract is checked.
type DecodeFunc func([]byte) error

// Failure is one contract violation: a mutation that made the decoder
// panic or return an error outside the compress taxonomy.
type Failure struct {
	Class  string // mutation class, e.g. "bitflip"
	Detail string // which mutation within the class
	Err    error  // the panic (wrapped) or unclassified error
}

func (f Failure) String() string {
	return fmt.Sprintf("%s[%s]: %v", f.Class, f.Detail, f.Err)
}

// Report aggregates one sweep's outcomes.
type Report struct {
	Mutations int // mutants decoded
	Errored   int // mutants rejected with a properly classified error
	Clean     int // mutants that decoded without error (e.g. flips in slack bits)
	// Failures lists every contract violation; an empty slice is a pass.
	Failures []Failure
	// MaxAllocBytes is the largest total allocation any single decode
	// performed, for asserting against the decode cap.
	MaxAllocBytes uint64
}

func (r *Report) merge(o Report) {
	r.Mutations += o.Mutations
	r.Errored += o.Errored
	r.Clean += o.Clean
	r.Failures = append(r.Failures, o.Failures...)
	if o.MaxAllocBytes > r.MaxAllocBytes {
		r.MaxAllocBytes = o.MaxAllocBytes
	}
}

// Options tunes a sweep. The zero value is exhaustive.
type Options struct {
	// MaxVarintSites caps how many byte offsets receive a varint bomb
	// (0 = every offset). Bombs are placed at evenly spaced offsets.
	MaxVarintSites int
}

// Sweep runs every mutation class against the archive. The caller should
// pass a serial decoder (workers = 1): the allocation accounting reads
// runtime totals, so concurrent allocation inflates MaxAllocBytes.
func Sweep(archive []byte, decode DecodeFunc, opt Options) Report {
	var rep Report
	rep.merge(BitFlips(archive, decode))
	rep.merge(Truncations(archive, decode))
	rep.merge(VarintBombs(archive, decode, opt.MaxVarintSites))
	rep.merge(HeaderSplices(archive, decode))
	rep.merge(ChunkRecords(archive, decode))
	return rep
}

// probe decodes one mutant and records the outcome.
func probe(rep *Report, class, detail string, decode DecodeFunc, b []byte) {
	rep.Mutations++
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	before := ms.TotalAlloc
	err, panicked := runProtected(decode, b)
	runtime.ReadMemStats(&ms)
	if d := ms.TotalAlloc - before; d > rep.MaxAllocBytes {
		rep.MaxAllocBytes = d
	}
	switch {
	case panicked != nil:
		rep.Failures = append(rep.Failures, Failure{class, detail, fmt.Errorf("panic: %v", panicked)})
	case err == nil:
		rep.Clean++
	case errors.Is(err, compress.ErrCorrupt) || errors.Is(err, compress.ErrTruncated):
		rep.Errored++
	default:
		rep.Failures = append(rep.Failures, Failure{class, detail, fmt.Errorf("unclassified error: %w", err)})
	}
}

func runProtected(decode DecodeFunc, b []byte) (err error, panicked any) {
	defer func() { panicked = recover() }()
	return decode(b), nil
}

// BitFlips decodes the archive once per bit position, with exactly that bit
// flipped.
func BitFlips(archive []byte, decode DecodeFunc) Report {
	var rep Report
	mut := make([]byte, len(archive))
	for i := range archive {
		for bit := 0; bit < 8; bit++ {
			copy(mut, archive)
			mut[i] ^= 1 << bit
			probe(&rep, "bitflip", fmt.Sprintf("byte %d bit %d", i, bit), decode, mut)
		}
	}
	return rep
}

// Truncations decodes every strict prefix of the archive, including the
// empty one.
func Truncations(archive []byte, decode DecodeFunc) Report {
	var rep Report
	for n := 0; n < len(archive); n++ {
		probe(&rep, "truncate", fmt.Sprintf("%d of %d bytes", n, len(archive)), decode, archive[:n])
	}
	return rep
}

// varintBomb is a maximal 10-byte uvarint (the encoding of a value beyond
// uint64), the classic length-field attack payload.
var varintBomb = []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}

// VarintBombs overwrites the bytes at each chosen offset with a maximal
// uvarint, so any length or dimension field parsed there claims an absurd
// value. maxSites caps the offset count (0 = every offset).
func VarintBombs(archive []byte, decode DecodeFunc, maxSites int) Report {
	var rep Report
	step := 1
	if maxSites > 0 && len(archive) > maxSites {
		step = (len(archive) + maxSites - 1) / maxSites
	}
	mut := make([]byte, len(archive))
	for i := 0; i < len(archive); i += step {
		copy(mut, archive)
		copy(mut[i:], varintBomb) // clipped at the end of the buffer
		probe(&rep, "varintbomb", fmt.Sprintf("offset %d", i), decode, mut)
	}
	return rep
}

// containerMagics are the repository's container signatures plus garbage,
// spliced over the first four bytes to exercise format-confusion paths.
var containerMagics = []string{"LRM1", "LRMC", "LRMS", "\xff\xff\xff\xff", "\x00\x00\x00\x00"}

// HeaderSplices overwrites the archive's leading magic with every container
// signature (and garbage), leaving the rest of the stream intact — the
// wrong-decoder-for-this-stream scenario.
func HeaderSplices(archive []byte, decode DecodeFunc) Report {
	var rep Report
	if len(archive) < 4 {
		return rep
	}
	for _, m := range containerMagics {
		mut := append([]byte(nil), archive...)
		copy(mut, m)
		probe(&rep, "headersplice", fmt.Sprintf("magic %q", m), decode, mut)
	}
	return rep
}

// --- LRMC chunk-record surgery ---

// chunkRecord is one parsed LRMC record.
type chunkRecord struct {
	crc  uint64
	body []byte
}

// parseChunked splits a well-formed LRMC archive into its container header
// and records; ok is false for anything else (the other mutation classes
// cover malformed containers).
func parseChunked(archive []byte) (header []byte, recs []chunkRecord, ok bool) {
	if len(archive) < 4 || string(archive[:4]) != "LRMC" {
		return nil, nil, false
	}
	pos := 4
	chunks, n := binary.Uvarint(archive[pos:])
	if n <= 0 || chunks < 1 || chunks > 1<<12 {
		return nil, nil, false
	}
	pos += n
	if pos >= len(archive) {
		return nil, nil, false
	}
	rank := int(archive[pos])
	pos++
	if rank < 1 || rank > 3 {
		return nil, nil, false
	}
	for i := 0; i < rank; i++ {
		_, n := binary.Uvarint(archive[pos:])
		if n <= 0 {
			return nil, nil, false
		}
		pos += n
	}
	header = archive[:pos]
	for c := uint64(0); c < chunks; c++ {
		crc, n := binary.Uvarint(archive[pos:])
		if n <= 0 {
			return nil, nil, false
		}
		pos += n
		blen, n := binary.Uvarint(archive[pos:])
		if n <= 0 || blen > uint64(len(archive)-pos-n) {
			return nil, nil, false
		}
		pos += n
		recs = append(recs, chunkRecord{crc: crc, body: archive[pos : pos+int(blen)]})
		pos += int(blen)
	}
	if pos != len(archive) {
		return nil, nil, false
	}
	return header, recs, true
}

// rebuildChunked re-serialises a header + record list.
func rebuildChunked(header []byte, recs []chunkRecord) []byte {
	out := append([]byte(nil), header...)
	var tmp [binary.MaxVarintLen64]byte
	for _, rec := range recs {
		out = append(out, tmp[:binary.PutUvarint(tmp[:], rec.crc)]...)
		out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(len(rec.body)))]...)
		out = append(out, rec.body...)
	}
	return out
}

// ChunkRecords applies record-level surgery to an LRMC archive: duplicated
// records, reordered (swapped) records, a deleted trailing record, and
// corrupted CRC fields. Every mutant keeps valid varint framing, so these
// reach the validation logic the byte-level classes cannot target
// precisely. Non-LRMC archives yield an empty report.
func ChunkRecords(archive []byte, decode DecodeFunc) Report {
	var rep Report
	header, recs, ok := parseChunked(archive)
	if !ok {
		return rep
	}
	for i := range recs {
		for j := range recs {
			if i == j {
				continue
			}
			// Record i's intact record (CRC and all) spliced over slot j.
			mut := append([]chunkRecord(nil), recs...)
			mut[j] = recs[i]
			probe(&rep, "chunkrecord", fmt.Sprintf("duplicate %d over %d", i, j), decode, rebuildChunked(header, mut))
		}
	}
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			mut := append([]chunkRecord(nil), recs...)
			mut[i], mut[j] = mut[j], mut[i]
			probe(&rep, "chunkrecord", fmt.Sprintf("swap %d and %d", i, j), decode, rebuildChunked(header, mut))
		}
	}
	if len(recs) > 1 {
		probe(&rep, "chunkrecord", "drop last record", decode, rebuildChunked(header, recs[:len(recs)-1]))
	}
	for i := range recs {
		mut := append([]chunkRecord(nil), recs...)
		mut[i].crc++
		probe(&rep, "chunkrecord", fmt.Sprintf("corrupt CRC %d", i), decode, rebuildChunked(header, mut))
	}
	return rep
}

package bitstream

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestDiffWriteBits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var ref, w Writer
		for op := 0; op < 50; op++ {
			n := uint(rng.Intn(65))
			v := rng.Uint64()
			w.WriteBits(v, n)
			for i := int(n) - 1; i >= 0; i-- {
				ref.WriteBit(uint(v >> uint(i) & 1))
			}
		}
		if w.Len() != ref.Len() {
			t.Fatalf("trial %d: len %d vs %d", trial, w.Len(), ref.Len())
		}
		if !bytes.Equal(w.Bytes(), ref.Bytes()) {
			t.Fatalf("trial %d: bytes differ", trial)
		}
	}
}

func TestDiffAppendWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		var ref, w, a, b Writer
		for op := 0; op < 30; op++ {
			n := uint(rng.Intn(65))
			v := rng.Uint64()
			a.WriteBits(v, n)
			ref.WriteBits(v, n)
		}
		for op := 0; op < 30; op++ {
			n := uint(rng.Intn(65))
			v := rng.Uint64()
			b.WriteBits(v, n)
			ref.WriteBits(v, n)
		}
		w.AppendWriter(&a)
		w.AppendWriter(&b)
		if !bytes.Equal(w.Bytes(), ref.Bytes()) || w.Len() != ref.Len() {
			t.Fatalf("trial %d: concat mismatch", trial)
		}
	}
}

func TestDiffReadBits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		var w Writer
		total := 0
		for op := 0; op < 50; op++ {
			n := uint(rng.Intn(65))
			w.WriteBits(rng.Uint64(), n)
			total += int(n)
		}
		data := w.Bytes()
		r1 := NewReader(data)
		r2 := NewReader(data)
		read := 0
		for read < total {
			n := uint(rng.Intn(65))
			if int(n) > total-read {
				n = uint(total - read)
			}
			v1, err1 := r1.ReadBits(n)
			var v2 uint64
			for i := uint(0); i < n; i++ {
				b, err := r2.ReadBit()
				if err != nil {
					t.Fatal(err)
				}
				v2 = v2<<1 | uint64(b)
			}
			if err1 != nil || v1 != v2 {
				t.Fatalf("trial %d: read %d bits: %x vs %x (err %v)", trial, n, v1, v2, err1)
			}
			read += int(n)
		}
	}
}

// Package bitstream implements MSB-first bit-level readers and writers used
// by the ZFP-style embedded coder and the Huffman coder.
package bitstream

import "errors"

// Writer accumulates bits most-significant-bit first into a byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within the low `n` bits
	n    uint   // number of pending bits in cur (0..7)
	bits int    // total bits written
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint64(b&1)
	w.n++
	w.bits++
	if w.n == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.n = 0, 0
	}
}

// WriteBits appends the low `n` bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic("bitstream: WriteBits n > 64")
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i)))
	}
}

// Len returns the total number of bits written so far.
func (w *Writer) Len() int { return w.bits }

// Bytes flushes any partial byte (padding with zeros) and returns the buffer.
// The writer remains usable; repeated calls return the same padded content
// until more bits are written.
func (w *Writer) Bytes() []byte {
	out := w.buf
	if w.n > 0 {
		out = append(out, byte(w.cur<<(8-w.n)))
	}
	return out
}

// Reset discards all written bits.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.n, w.bits = 0, 0, 0
}

// ErrOutOfBits is returned when a Reader is asked for more bits than exist.
var ErrOutOfBits = errors.New("bitstream: out of bits")

// Reader consumes bits most-significant-bit first from a byte buffer.
type Reader struct {
	buf []byte
	pos int // bit position
}

// NewReader returns a Reader over b. The buffer is not copied.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= 8*len(r.buf) {
		return 0, ErrOutOfBits
	}
	byteIdx := r.pos >> 3
	bitIdx := uint(7 - r.pos&7)
	r.pos++
	return uint(r.buf[byteIdx]>>bitIdx) & 1, nil
}

// ReadBits returns the next n bits, most significant first. n must be <= 64.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic("bitstream: ReadBits n > 64")
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return 8*len(r.buf) - r.pos }

// Pos returns the current bit offset from the start of the buffer.
func (r *Reader) Pos() int { return r.pos }

// Seek jumps to an absolute bit offset. Seeking to the very end is legal
// (subsequent reads return ErrOutOfBits); beyond it is an error.
func (r *Reader) Seek(bitPos int) error {
	if bitPos < 0 || bitPos > 8*len(r.buf) {
		return ErrOutOfBits
	}
	r.pos = bitPos
	return nil
}

// Package bitstream implements MSB-first bit-level readers and writers used
// by the ZFP-style embedded coder and the Huffman coder.
//
// The writer accumulates into a 64-bit word and spills whole words into the
// byte buffer, so multi-bit writes cost O(1) instead of one buffer append
// per bit — the bit-plane coder and the Huffman payload loop are the
// hottest code in the repository and run almost entirely through WriteBits.
package bitstream

import (
	"encoding/binary"
	"errors"
)

// Writer accumulates bits most-significant-bit first into a byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, value in the low `n` bits (MSB written first)
	n    uint   // number of pending bits in cur, 0..63
	bits int    // total bits written
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint64(b&1)
	w.n++
	w.bits++
	if w.n == 64 {
		w.buf = binary.BigEndian.AppendUint64(w.buf, w.cur)
		w.cur, w.n = 0, 0
	}
}

// WriteBits appends the low `n` bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic("bitstream: WriteBits n > 64")
	}
	if n == 0 {
		return
	}
	if n < 64 {
		v &= 1<<n - 1
	}
	w.bits += int(n)
	free := 64 - w.n // 1..64, since w.n <= 63
	if n < free {
		w.cur = w.cur<<n | v
		w.n += n
		return
	}
	rem := n - free // 0..63
	// Fill cur to exactly 64 bits and spill it. free&63 keeps the shift
	// legal when free == 64 (then w.n == 0 and w.cur == 0, so the shifted
	// term is zero anyway).
	w.buf = binary.BigEndian.AppendUint64(w.buf, w.cur<<(free&63)|v>>rem)
	if rem == 0 {
		w.cur, w.n = 0, 0
		return
	}
	w.cur = v & (1<<rem - 1)
	w.n = rem
}

// AppendWriter appends every bit written to o, in order, to w. This is the
// deterministic concatenation primitive for the parallel encoders: shards
// encoded into private writers and appended in shard order yield the exact
// bit (and therefore byte) stream of a single serial writer. o is not
// modified.
func (w *Writer) AppendWriter(o *Writer) {
	if w.n == 0 {
		// Byte-aligned fast path: splice whole bytes directly.
		w.buf = append(w.buf, o.buf...)
		w.bits += 8 * len(o.buf)
	} else {
		i := 0
		for ; i+8 <= len(o.buf); i += 8 {
			w.WriteBits(binary.BigEndian.Uint64(o.buf[i:]), 64)
		}
		for ; i < len(o.buf); i++ {
			w.WriteBits(uint64(o.buf[i]), 8)
		}
	}
	if o.n > 0 {
		w.WriteBits(o.cur, o.n)
	}
}

// Len returns the total number of bits written so far.
func (w *Writer) Len() int { return w.bits }

// Bytes flushes any partial byte (padding with zeros) and returns the buffer.
// The writer remains usable; repeated calls return the same padded content
// until more bits are written.
func (w *Writer) Bytes() []byte {
	out := w.buf
	if w.n > 0 {
		cur := w.cur << (64 - w.n) // left-align pending bits
		for i := uint(0); i < (w.n+7)/8; i++ {
			out = append(out, byte(cur>>(56-8*i)))
		}
	}
	return out
}

// Reset discards all written bits.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.n, w.bits = 0, 0, 0
}

// Grow reserves capacity for at least n more bits, so encoders that can
// bound their output up front (the Huffman packer knows the exact payload
// size from the histogram) pay one allocation instead of a doubling
// sequence. Grow never changes the written content.
func (w *Writer) Grow(n int) {
	if n <= 0 {
		return
	}
	need := len(w.buf) + (n+7)/8 + 8 // slack for the pending word spill
	if cap(w.buf) >= need {
		return
	}
	buf := make([]byte, len(w.buf), need)
	copy(buf, w.buf)
	w.buf = buf
}

// ErrOutOfBits is returned when a Reader is asked for more bits than exist.
var ErrOutOfBits = errors.New("bitstream: out of bits")

// ErrReadWidth is returned by ReadBits for widths above 64. The reader is
// on the decode path of untrusted streams, so an absurd width surfaces as
// an error rather than a panic (the Writer, which only ever sees
// encoder-chosen widths, keeps its panic).
var ErrReadWidth = errors.New("bitstream: read width exceeds 64 bits")

// Reader consumes bits most-significant-bit first from a byte buffer.
type Reader struct {
	buf []byte
	pos int // bit position
}

// NewReader returns a Reader over b. The buffer is not copied.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= 8*len(r.buf) {
		return 0, ErrOutOfBits
	}
	byteIdx := r.pos >> 3
	bitIdx := uint(7 - r.pos&7)
	r.pos++
	return uint(r.buf[byteIdx]>>bitIdx) & 1, nil
}

// ReadBits returns the next n bits, most significant first. n must be <= 64.
// On ErrOutOfBits the reader is positioned at the end of the stream.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, ErrReadWidth
	}
	end := r.pos + int(n)
	if end > 8*len(r.buf) {
		r.pos = 8 * len(r.buf)
		return 0, ErrOutOfBits
	}
	var v uint64
	pos := r.pos
	for got := uint(0); got < n; {
		byteIdx := pos >> 3
		bit := uint(pos & 7)
		take := 8 - bit
		if take > n-got {
			take = n - got
		}
		chunk := uint64(r.buf[byteIdx]>>(8-bit-take)) & (1<<take - 1)
		v = v<<take | chunk
		got += take
		pos += int(take)
	}
	r.pos = end
	return v, nil
}

// Peek64 returns the next 64 bits, most significant first, WITHOUT
// consuming them. Positions past the end of the stream read as zero, so the
// caller must consult Remaining before trusting low bits near the end. This
// is the window primitive behind the batch decoders: one peek replaces up
// to 64 ReadBit calls, and leading-zero/table arithmetic on the window
// replaces the per-bit branches.
func (r *Reader) Peek64() uint64 {
	i := r.pos >> 3
	k := uint(r.pos & 7)
	if i+9 <= len(r.buf) {
		// Fast path: 9 bytes cover any bit offset's 64-bit window.
		v := binary.BigEndian.Uint64(r.buf[i:]) << k
		if k != 0 {
			v |= uint64(r.buf[i+8]) >> (8 - k)
		}
		return v
	}
	// Tail path: fewer than 9 bytes left; missing bytes read as zero.
	var v uint64
	shift := 56 + k // <= 63
	for ; i < len(r.buf); i++ {
		v |= uint64(r.buf[i]) << shift
		if shift < 8 {
			break
		}
		shift -= 8
	}
	return v
}

// Advance consumes n bits previously examined via Peek64. n must not exceed
// Remaining(); the batch decoders check availability against Remaining
// before advancing, which preserves the exact out-of-bits semantics of the
// per-bit readers.
func (r *Reader) Advance(n int) {
	r.pos += n
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return 8*len(r.buf) - r.pos }

// Pos returns the current bit offset from the start of the buffer.
func (r *Reader) Pos() int { return r.pos }

// Seek jumps to an absolute bit offset. Seeking to the very end is legal
// (subsequent reads return ErrOutOfBits); beyond it is an error.
func (r *Reader) Seek(bitPos int) error {
	if bitPos < 0 || bitPos > 8*len(r.buf) {
		return ErrOutOfBits
	}
	r.pos = bitPos
	return nil
}

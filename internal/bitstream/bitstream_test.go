package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleBits(t *testing.T) {
	var w Writer
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len=%d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsMSBFirst(t *testing.T) {
	var w Writer
	w.WriteBits(0b1011, 4)
	w.WriteBits(0b0110, 4)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0b10110110 {
		t.Fatalf("bytes = %08b, want 10110110", b[0])
	}
}

func TestPartialBytePadding(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0b10100000 {
		t.Fatalf("padded byte = %08b, want 10100000", b[0])
	}
	// Bytes must be repeatable without duplicating the pad.
	b2 := w.Bytes()
	if len(b2) != 1 || b2[0] != b[0] {
		t.Fatalf("second Bytes() = %v, want %v", b2, b)
	}
}

func TestRoundTripRandomChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type chunk struct {
		v uint64
		n uint
	}
	var chunks []chunk
	var w Writer
	for i := 0; i < 1000; i++ {
		n := uint(rng.Intn(65))
		v := rng.Uint64()
		if n < 64 {
			v &= (1 << n) - 1
		}
		chunks = append(chunks, chunk{v, n})
		w.WriteBits(v, n)
	}
	r := NewReader(w.Bytes())
	for i, c := range chunks {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.v {
			t.Fatalf("chunk %d: got %x, want %x (n=%d)", i, got, c.v, c.n)
		}
	}
}

func TestQuickRoundTrip16(t *testing.T) {
	check := func(vals []uint16) bool {
		var w Writer
		for _, v := range vals {
			w.WriteBits(uint64(v), 16)
		}
		r := NewReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadBits(16)
			if err != nil || got != uint64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfBits(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("err = %v, want ErrOutOfBits", err)
	}
	if _, err := NewReader(nil).ReadBits(1); err != ErrOutOfBits {
		t.Fatalf("err = %v, want ErrOutOfBits", err)
	}
}

func TestRemainingAndPos(t *testing.T) {
	r := NewReader([]byte{0xab, 0xcd})
	if r.Remaining() != 16 || r.Pos() != 0 {
		t.Fatalf("Remaining=%d Pos=%d", r.Remaining(), r.Pos())
	}
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 11 || r.Pos() != 5 {
		t.Fatalf("after 5: Remaining=%d Pos=%d", r.Remaining(), r.Pos())
	}
}

func TestReset(t *testing.T) {
	var w Writer
	w.WriteBits(0xff, 8)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("Reset did not clear writer")
	}
	w.WriteBits(0b1, 1)
	if b := w.Bytes(); len(b) != 1 || b[0] != 0x80 {
		t.Fatalf("post-reset write = %v", b)
	}
}

func TestZeroLengthWrite(t *testing.T) {
	var w Writer
	w.WriteBits(123, 0)
	if w.Len() != 0 {
		t.Fatal("zero-length write changed state")
	}
}

func TestSeek(t *testing.T) {
	var w Writer
	w.WriteBits(0b10110011, 8)
	w.WriteBits(0b11110000, 8)
	r := NewReader(w.Bytes())
	if err := r.Seek(8); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBits(8)
	if err != nil || got != 0b11110000 {
		t.Fatalf("after Seek(8): %08b, %v", got, err)
	}
	// Seek back.
	if err := r.Seek(2); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.ReadBits(3); got != 0b110 {
		t.Fatalf("after Seek(2): %03b", got)
	}
	// End is legal, beyond is not.
	if err := r.Seek(16); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatal("read at end should fail")
	}
	if err := r.Seek(17); err != ErrOutOfBits {
		t.Fatal("seek beyond end should fail")
	}
	if err := r.Seek(-1); err != ErrOutOfBits {
		t.Fatal("negative seek should fail")
	}
}

func TestPeek64MatchesReadBits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var w Writer
		total := 1 + rng.Intn(300)
		for i := 0; i < total; i++ {
			w.WriteBit(uint(rng.Intn(2)))
		}
		buf := w.Bytes()
		r := NewReader(buf)
		for pos := 0; pos <= 8*len(buf); pos++ {
			if err := r.Seek(pos); err != nil {
				t.Fatal(err)
			}
			peek := r.Peek64()
			// Reference: read min(64, remaining) bits and left-align; the
			// rest of the window must be zero padding.
			n := r.Remaining()
			if n > 64 {
				n = 64
			}
			var want uint64
			if n > 0 {
				ref := NewReader(buf)
				if err := ref.Seek(pos); err != nil {
					t.Fatal(err)
				}
				v, err := ref.ReadBits(uint(n))
				if err != nil {
					t.Fatal(err)
				}
				want = v << (64 - uint(n))
			}
			if peek != want {
				t.Fatalf("Peek64 at pos %d/%d = %#x, want %#x", pos, 8*len(buf), peek, want)
			}
			if r.Pos() != pos {
				t.Fatalf("Peek64 moved the reader: pos %d -> %d", pos, r.Pos())
			}
		}
	}
}

func TestAdvance(t *testing.T) {
	var w Writer
	w.WriteBits(0xdeadbeefcafef00d, 64)
	w.WriteBits(0x123, 12)
	buf := w.Bytes()
	r := NewReader(buf)
	r.Advance(4)
	got, err := r.ReadBits(12)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xead {
		t.Fatalf("ReadBits after Advance(4) = %#x, want 0xead", got)
	}
	// Peek64 then Advance the full window must land exactly at the end.
	r2 := NewReader(buf)
	r2.Advance(r2.Remaining())
	if r2.Remaining() != 0 {
		t.Fatalf("Remaining after full Advance = %d", r2.Remaining())
	}
	if _, err := r2.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("ReadBit at end = %v, want ErrOutOfBits", err)
	}
}

func TestWriterGrow(t *testing.T) {
	var w Writer
	w.WriteBits(0xff, 64)
	w.Grow(1 << 12)
	want := w.Bytes()
	if len(want) != 8 || want[7] != 0xff {
		t.Fatalf("Grow changed content: %x", want)
	}
	// Writes after Grow must not reallocate.
	base := &w.buf[0]
	for i := 0; i < (1<<12)/64; i++ {
		w.WriteBits(uint64(i), 64)
	}
	if &w.buf[0] != base {
		t.Fatal("Writer reallocated despite Grow")
	}
	w.Grow(-5) // no-op
	w.Grow(0)  // no-op
}

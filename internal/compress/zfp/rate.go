package zfp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"lrm/internal/bitstream"
	"lrm/internal/compress"
	"lrm/internal/grid"
	"lrm/internal/obs/trace"
	"lrm/internal/parallel"
)

// modeRate is the fixed-rate stream mode: every block costs exactly
// rate * 4^d bits, which makes the stream randomly accessible — the
// defining feature of real ZFP's -r mode (compressed arrays with O(1)
// element access). The fixed budget also makes rate mode the most
// parallel-friendly: block i starts at bit i*budget, so decode needs no
// serial parse stage at all.
const modeRate byte = 2

// NewRate returns a fixed-rate codec storing exactly `rate` bits per value.
// Compression ratio is then exactly 64/rate regardless of content; quality
// varies per block instead. Fixed-rate streams support random block access
// via DecodeAt.
func NewRate(rate int) (*Codec, error) {
	if rate < 1 || rate > 62 {
		return nil, fmt.Errorf("zfp: rate %d out of range [1,62]", rate)
	}
	return &Codec{mode: modeRate, rate: uint(rate)}, nil
}

// MustNewRate is NewRate but panics on invalid rate.
func MustNewRate(rate int) *Codec {
	c, err := NewRate(rate)
	if err != nil {
		panic(err)
	}
	return c
}

// Rate returns the configured bits per value (rate mode).
func (c *Codec) Rate() int { return int(c.rate) }

// encodePlaneBudget is encodePlane with a bit budget: encoding stops the
// moment the block's budget is exhausted, exactly mirroring ZFP's
// encode_ints. It returns the updated significant count and remaining
// budget.
func encodePlaneBudget(w *bitstream.Writer, x uint64, size, n, bits int) (int, int) {
	m := n
	if bits < m {
		m = bits
	}
	bits -= m
	if m > 0 {
		// Verbatim prefix, least significant bit first, in one write.
		w.WriteBits(mathbitsReverse(x, m), uint(m))
		x >>= uint(m)
	}
	for n < size && bits > 0 {
		bits--
		if x == 0 {
			w.WriteBit(0)
			break
		}
		w.WriteBit(1)
		for n < size-1 && bits > 0 {
			bits--
			bit := uint(x & 1)
			w.WriteBit(bit)
			if bit != 0 {
				break
			}
			x >>= 1
			n++
		}
		x >>= 1
		n++
	}
	return n, bits
}

// mathbitsReverse returns the low m bits of x in reversed order (bit 0
// becomes the most significant of the m-bit result), matching the emission
// order of a least-significant-first per-bit loop.
func mathbitsReverse(x uint64, m int) uint64 {
	var v uint64
	for i := 0; i < m; i++ {
		v = v<<1 | (x >> uint(i) & 1)
	}
	return v
}

// decodePlaneBudget mirrors encodePlaneBudget.
func decodePlaneBudget(r *bitstream.Reader, size, n, bits int) (uint64, int, int, error) {
	m := n
	if bits < m {
		m = bits
	}
	bits -= m
	var x uint64
	for i := 0; i < m; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, 0, 0, err
		}
		x |= uint64(b) << uint(i)
	}
	for n < size && bits > 0 {
		bits--
		b, err := r.ReadBit()
		if err != nil {
			return 0, 0, 0, err
		}
		if b == 0 {
			break
		}
		for n < size-1 && bits > 0 {
			bits--
			bb, err := r.ReadBit()
			if err != nil {
				return 0, 0, 0, err
			}
			if bb != 0 {
				break
			}
			n++
		}
		x |= 1 << uint(n)
		n++
	}
	return x, n, bits, nil
}

// blockBudgetBits returns the exact bit cost of one block in rate mode.
func blockBudgetBits(rate uint, size int) int { return int(rate) * size }

// compressRate encodes the whole field at a fixed per-block budget,
// sharding the block list across the pool like the variable-rate encoder.
// Because every block costs exactly `budget` bits, shard boundaries land
// at deterministic offsets and concatenation reproduces the serial stream.
func (c *Codec) compressRate(ctx context.Context, f *grid.Field) ([]byte, error) {
	rank := f.Rank()
	size := 1 << (2 * uint(rank))
	budget := blockBudgetBits(c.rate, size)
	if budget < 16 {
		return nil, fmt.Errorf("zfp: rate %d leaves no room for the block exponent", c.rate)
	}

	bs := blocks(f.Dims)
	var w bitstream.Writer
	workers := c.workerCount(8 * int64(f.Len()))
	if workers <= 1 || len(bs) < minParallelBlocks {
		_, sp := trace.Start(ctx, "zfp.shard_encode")
		sp.AddItems(int64(len(bs)))
		err := c.encodeRateBlocks(f, bs, budget, &w)
		sp.SetError(err)
		sp.End()
		if err != nil {
			return nil, err
		}
	} else {
		shards := parallel.Shards(workers, len(bs))
		ws := make([]bitstream.Writer, shards)
		errs := make([]error, shards)
		parallel.ForShardCtx(ctx, workers, len(bs), func(ctx context.Context, s, lo, hi int) {
			_, sp := trace.Start(ctx, "zfp.shard_encode")
			sp.AddItems(int64(hi - lo))
			errs[s] = c.encodeRateBlocks(f, bs[lo:hi], budget, &ws[s])
			sp.SetError(errs[s])
			sp.End()
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for i := range ws {
			w.AppendWriter(&ws[i])
		}
	}

	out := compress.EncodeDimsHeader(f.Dims)
	out = append(out, modeRate, byte(c.rate))
	return append(out, w.Bytes()...), nil
}

// encodeRateBlocks is the serial fixed-rate kernel over a slice of blocks.
func (c *Codec) encodeRateBlocks(f *grid.Field, bs []blockShape, budget int, w *bitstream.Writer) error {
	rank := f.Rank()
	size := 1 << (2 * uint(rank))
	s := newBlockScratch(size)
	defer s.release()
	vals, blk, nb := s.vals, s.blk, s.nb
	perm := permFor(rank)

	for _, b := range bs {
		gather(f, b, vals)
		// Fused NaN/Inf + max-magnitude scan over the raw bits, as in
		// encodeBlocks.
		maxBits := uint64(0)
		for _, v := range vals {
			if u := math.Float64bits(v) &^ (1 << 63); u > maxBits {
				maxBits = u
			}
		}
		if maxBits >= 0x7ff0000000000000 {
			return errors.New("zfp: NaN/Inf not supported")
		}
		maxAbs := math.Float64frombits(maxBits)
		start := w.Len()
		_, emax := math.Frexp(maxAbs)
		if maxAbs == 0 {
			emax = -16384 // forces all-zero planes below
		}
		w.WriteBits(uint64(emax+16384), 15)
		scale := 0.0
		if maxAbs != 0 {
			scale = math.Ldexp(1, fixedPointBits-emax)
		}
		for i, v := range vals {
			blk[i] = int64(v * scale)
		}
		transformForward(blk, rank)
		for i := range blk {
			nb[i] = int2nb(blk[perm[i]])
		}
		bits := budget - 15
		n := 0
		for k := intprec - 1; k >= intprec-MaxPrecision && bits > 0; k-- {
			var plane uint64
			for i := 0; i < size; i++ {
				plane |= (nb[i] >> uint(k) & 1) << uint(i)
			}
			n, bits = encodePlaneBudget(w, plane, size, n, bits)
		}
		// Pad to the exact block budget: the fixed size is what makes the
		// stream randomly accessible.
		if pad := start + budget - w.Len(); pad > 0 {
			for pad >= 64 {
				w.WriteBits(0, 64)
				pad -= 64
			}
			w.WriteBits(0, uint(pad))
		}
	}
	return nil
}

// decodeRateBlock decodes one fixed-budget block from r into s.vals. The
// scratch buffers are caller-owned so bulk decode allocates nothing per
// block.
func decodeRateBlock(r *bitstream.Reader, rate uint, rank int, s *blockScratch) error {
	size := 1 << (2 * uint(rank))
	budget := blockBudgetBits(rate, size)
	start := r.Pos()

	e, err := r.ReadBits(15)
	if err != nil {
		return fmt.Errorf("zfp: truncated rate block: %w", err)
	}
	emax := int(e) - 16384

	nb := s.nb
	for i := range nb {
		nb[i] = 0
	}
	bits := budget - 15
	n := 0
	for k := intprec - 1; k >= intprec-MaxPrecision && bits > 0; k-- {
		plane, n2, bits2, err := decodePlaneBudget(r, size, n, bits)
		if err != nil {
			return fmt.Errorf("zfp: truncated rate block: %w", err)
		}
		n, bits = n2, bits2
		for i := 0; i < size; i++ {
			nb[i] |= (plane >> uint(i) & 1) << uint(k)
		}
	}
	// Skip the padding up to the exact budget.
	if err := r.Seek(start + budget); err != nil {
		return fmt.Errorf("zfp: truncated rate padding: %w", err)
	}

	blk := s.blk
	perm := permFor(rank)
	for i, u := range nb {
		blk[perm[i]] = nb2int(u)
	}
	transformInverse(blk, rank)
	scale := math.Ldexp(1, emax-fixedPointBits)
	if emax == -16384 {
		scale = 0
	}
	for i, q := range blk {
		s.vals[i] = float64(q) * scale
	}
	return nil
}

// DecodeAt randomly accesses a fixed-rate stream: it decodes ONLY the block
// containing the given coordinates and returns the sample, without touching
// the rest of the stream — ZFP's compressed-array access pattern. The
// stream must have been produced in rate mode.
func (c *Codec) DecodeAt(data []byte, coord ...int) (float64, error) {
	dims, rest, err := compress.DecodeDimsHeader(data)
	if err != nil {
		return 0, err
	}
	if len(rest) < 2 {
		return 0, fmt.Errorf("zfp: truncated stream: %w", compress.ErrTruncated)
	}
	if rest[0] != modeRate {
		return 0, fmt.Errorf("zfp: DecodeAt requires a fixed-rate stream: %w", compress.ErrHeader)
	}
	rate := uint(rest[1])
	if rate < 1 || rate > 62 {
		return 0, fmt.Errorf("zfp: invalid rate %d in stream: %w", rate, compress.ErrHeader)
	}
	if len(coord) != len(dims) {
		//lrmlint:ignore errtaxonomy caller API misuse, not a stream failure
		return 0, fmt.Errorf("zfp: coordinate rank %d != field rank %d", len(coord), len(dims))
	}
	for i, x := range coord {
		if x < 0 || x >= dims[i] {
			//lrmlint:ignore errtaxonomy caller API misuse, not a stream failure
			return 0, fmt.Errorf("zfp: coordinate %d out of range [0,%d)", x, dims[i])
		}
	}
	rank := len(dims)
	size := 1 << (2 * uint(rank))
	budget := blockBudgetBits(rate, size)

	// Locate the block in raster order and the sample within it.
	var ny, nx int
	var cz, cy, cx int
	switch rank {
	case 1:
		ny, nx = 1, dims[0]
		cx = coord[0]
	case 2:
		ny, nx = dims[0], dims[1]
		cy, cx = coord[0], coord[1]
	default:
		ny, nx = dims[1], dims[2]
		cz, cy, cx = coord[0], coord[1], coord[2]
	}
	bz, by, bx := cz/4, cy/4, cx/4
	bnx := (nx + 3) / 4
	bny := (ny + 3) / 4
	blockIdx := (bz*bny+by)*bnx + bx

	payload := rest[2:]
	r := bitstream.NewReader(payload)
	offset := blockIdx * budget
	if offset+budget > 8*len(payload) {
		return 0, fmt.Errorf("zfp: stream too short for requested block: %w", compress.ErrTruncated)
	}
	// O(1) seek straight to the block: fixed-rate blocks all cost the
	// same number of bits.
	if err := r.Seek(offset); err != nil {
		return 0, err
	}
	s := newBlockScratch(size)
	defer s.release()
	if err := decodeRateBlock(r, rate, rank, s); err != nil {
		return 0, compress.Classify(err)
	}
	lz, ly, lx := cz%4, cy%4, cx%4
	yl, xl := 4, 4
	if rank < 2 {
		yl = 1
	}
	return s.vals[(lz*yl+ly)*xl+lx], nil
}

// decompressRate reverses compressRate. Fixed budgets mean block i begins
// at bit i*budget, so shards decode fully independently from their own
// seeked readers — no serial parse stage.
func decompressRate(ctx context.Context, dims []int, rest []byte, workers int) (*grid.Field, error) {
	if len(rest) < 1 {
		return nil, fmt.Errorf("zfp: truncated rate header: %w", compress.ErrTruncated)
	}
	rate := uint(rest[0])
	if rate < 1 || rate > 62 {
		return nil, fmt.Errorf("zfp: invalid rate %d in stream: %w", rate, compress.ErrHeader)
	}
	rank := len(dims)
	size := 1 << (2 * uint(rank))
	budget := blockBudgetBits(rate, size)
	payload := rest[1:]
	// Rate streams have a deterministic size: validate before allocating.
	if need := blockCount(dims) * budget; need > 8*len(payload) {
		return nil, fmt.Errorf("zfp: rate stream needs %d bits, payload has %d: %w",
			need, 8*len(payload), compress.ErrTruncated)
	}
	f, err := compress.NewCheckedField("zfp: rate field", dims)
	if err != nil {
		return nil, err
	}
	bs := blocks(dims)

	if workers <= 1 || len(bs) < minParallelBlocks {
		s := newBlockScratch(size)
		defer s.release()
		_, sp := trace.Start(ctx, "zfp.shard_decode")
		defer sp.End()
		sp.AddItems(int64(len(bs)))
		r := bitstream.NewReader(payload)
		for _, b := range bs {
			if err := decodeRateBlock(r, rate, rank, s); err != nil {
				sp.SetError(err)
				return nil, err
			}
			scatter(f, b, s.vals)
		}
		return f, nil
	}

	shards := parallel.Shards(workers, len(bs))
	errs := make([]error, shards)
	parallel.ForShardCtx(ctx, workers, len(bs), func(ctx context.Context, sh, lo, hi int) {
		_, sp := trace.Start(ctx, "zfp.shard_decode")
		defer sp.End()
		sp.AddItems(int64(hi - lo))
		s := newBlockScratch(size)
		defer s.release()
		r := bitstream.NewReader(payload)
		if err := r.Seek(lo * budget); err != nil {
			sp.SetError(err)
			errs[sh] = err
			return
		}
		for bi := lo; bi < hi; bi++ {
			if err := decodeRateBlock(r, rate, rank, s); err != nil {
				sp.SetError(err)
				errs[sh] = err
				return
			}
			scatter(f, bs[bi], s.vals)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

package zfp

import (
	"crypto/sha256"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"lrm/internal/bitstream"
	"lrm/internal/compress"
	"lrm/internal/grid"
	"lrm/internal/parallel"
)

// The hashes below were captured from the pre-rewrite scalar kernels (the
// bit-by-bit encodePlane/decodePlane and the full transpose64 path), before
// the batch-of-64 rewrites landed. The rewritten kernels MUST reproduce
// these streams byte for byte at every worker count: the rewrite is a
// latency optimization with zero format budget.

// goldenSynth fills a field with the fixture waveform used to capture the
// golden hashes.
func goldenSynth(t *testing.T, dims ...int) *grid.Field {
	t.Helper()
	f := grid.New(dims...)
	for i := range f.Data {
		x := float64(i)
		f.Data[i] = math.Sin(x*0.017)*3.5 + math.Cos(x*0.0013)*11 + 0.25*math.Sin(x*0.41)
	}
	return f
}

func goldenHash(b []byte) string {
	s := sha256.Sum256(b)
	return fmt.Sprintf("%x", s[:8])
}

var goldenFields = []struct {
	name string
	dims []int
}{
	{"1d-37", []int{37}},
	{"1d-4096", []int{4096}},
	{"2d-33x47", []int{33, 47}},
	{"2d-128x96", []int{128, 96}},
	{"3d-16", []int{16, 16, 16}},
	{"3d-31x17x9", []int{31, 17, 9}},
	{"3d-40x44x48", []int{40, 44, 48}},
}

var zfpGoldenStreams = map[[2]string]string{
	{"zfp-p8", "1d-37"}:       "104964385a3c9147",
	{"zfp-p8", "1d-4096"}:     "c0fc8fec4a6c018d",
	{"zfp-p8", "2d-33x47"}:    "f12c93a9e8358017",
	{"zfp-p8", "2d-128x96"}:   "1d300cad2e5a4161",
	{"zfp-p8", "3d-16"}:       "db58a6a1294ab86d",
	{"zfp-p8", "3d-31x17x9"}:  "81f4c81897b40fa8",
	{"zfp-p8", "3d-40x44x48"}: "b3e4d7e337d3f1d4",

	{"zfp-p16", "1d-37"}:       "2cde9f085cf55124",
	{"zfp-p16", "1d-4096"}:     "da410b69e06f0a42",
	{"zfp-p16", "2d-33x47"}:    "d5d41e73bde5f02d",
	{"zfp-p16", "2d-128x96"}:   "05833ca1c99bdb69",
	{"zfp-p16", "3d-16"}:       "ef38a862a3bc6b8a",
	{"zfp-p16", "3d-31x17x9"}:  "d9ce57198ee9819d",
	{"zfp-p16", "3d-40x44x48"}: "e3aa206f20a45a8d",

	{"zfp-p60", "1d-37"}:       "ae2300fbf1c963e6",
	{"zfp-p60", "1d-4096"}:     "843ef42ae9865fe9",
	{"zfp-p60", "2d-33x47"}:    "4e3387f36bc6bdd6",
	{"zfp-p60", "2d-128x96"}:   "9b6ad88b993abedf",
	{"zfp-p60", "3d-16"}:       "f708572c7abd231b",
	{"zfp-p60", "3d-31x17x9"}:  "e2c6b5b1ee5b3f33",
	{"zfp-p60", "3d-40x44x48"}: "ff37e35508e63d58",

	{"zfp-a1e-6", "1d-37"}:       "9b52128a71081a42",
	{"zfp-a1e-6", "1d-4096"}:     "269a7ab025b3320f",
	{"zfp-a1e-6", "2d-33x47"}:    "4178162951d9f3ee",
	{"zfp-a1e-6", "2d-128x96"}:   "d95e3bfee3258d9d",
	{"zfp-a1e-6", "3d-16"}:       "58757788e97b472b",
	{"zfp-a1e-6", "3d-31x17x9"}:  "bde71e04e8684e97",
	{"zfp-a1e-6", "3d-40x44x48"}: "035231bbd0a46aec",

	{"zfp-r7", "1d-37"}:       "16035d4a30191763",
	{"zfp-r7", "1d-4096"}:     "801ce80a6426f8bb",
	{"zfp-r7", "2d-33x47"}:    "607d3f5941f91da7",
	{"zfp-r7", "2d-128x96"}:   "8a49d344ee27645f",
	{"zfp-r7", "3d-16"}:       "659c28d6b29b2c45",
	{"zfp-r7", "3d-31x17x9"}:  "23bf1ca760c71c40",
	{"zfp-r7", "3d-40x44x48"}: "7662077a474930cc",
}

func zfpGoldenCodec(t *testing.T, name string) *Codec {
	t.Helper()
	switch name {
	case "zfp-p8":
		return MustNew(8)
	case "zfp-p16":
		return MustNew(16)
	case "zfp-p60":
		return MustNew(60)
	case "zfp-a1e-6":
		return MustNewAccuracy(1e-6)
	case "zfp-r7":
		return MustNewRate(7)
	}
	t.Fatalf("unknown codec fixture %q", name)
	return nil
}

// TestGoldenStreams locks the compressed output to the pre-rewrite scalar
// kernels at workers=1 and workers=8 (with the size cutover disabled so the
// 8-way path genuinely shards even the small fixtures).
func TestGoldenStreams(t *testing.T) {
	for key, want := range zfpGoldenStreams {
		cn, fn := key[0], key[1]
		var dims []int
		for _, gf := range goldenFields {
			if gf.name == fn {
				dims = gf.dims
			}
		}
		f := goldenSynth(t, dims...)
		base := zfpGoldenCodec(t, cn)
		for _, workers := range []int{1, 8} {
			c := base.WithParallel(parallel.Config{Workers: workers, MinShardBytes: -1})
			enc, err := c.Compress(f)
			if err != nil {
				t.Fatalf("%s/%s workers=%d: %v", cn, fn, workers, err)
			}
			if got := goldenHash(enc); got != want {
				t.Errorf("%s/%s workers=%d: stream hash %s, want golden %s", cn, fn, workers, got, want)
			}
			back, err := c.Decompress(enc)
			if err != nil {
				t.Fatalf("%s/%s workers=%d decode: %v", cn, fn, workers, err)
			}
			if back.Len() != f.Len() {
				t.Fatalf("%s/%s: round trip length %d != %d", cn, fn, back.Len(), f.Len())
			}
		}
	}
}

// --- scalar reference implementations (the pre-rewrite kernels) ---

// encodePlaneScalar is the original bit-by-bit plane encoder, kept verbatim
// as the reference the batch kernel is proved against.
func encodePlaneScalar(w *bitstream.Writer, x uint64, size, n int) int {
	if n > 0 {
		w.WriteBits(bits.Reverse64(x)>>(64-uint(n)), uint(n))
		x >>= uint(n)
	}
	acc, cnt := uint64(0), uint(0)
	for n < size {
		if x == 0 {
			acc, cnt = acc<<1, cnt+1
			break
		}
		acc, cnt = acc<<1|1, cnt+1
		if cnt == 64 {
			w.WriteBits(acc, 64)
			acc, cnt = 0, 0
		}
		for n < size-1 {
			bit := x & 1
			acc, cnt = acc<<1|bit, cnt+1
			if cnt == 64 {
				w.WriteBits(acc, 64)
				acc, cnt = 0, 0
			}
			if bit != 0 {
				break
			}
			x >>= 1
			n++
		}
		x >>= 1
		n++
	}
	if cnt > 0 {
		w.WriteBits(acc, cnt)
	}
	return n
}

// decodePlaneScalar is the original per-bit plane decoder.
func decodePlaneScalar(r *bitstream.Reader, size, n int) (uint64, int, error) {
	var x uint64
	if n > 0 {
		v, err := r.ReadBits(uint(n))
		if err != nil {
			return 0, 0, err
		}
		x = bits.Reverse64(v) >> (64 - uint(n))
	}
	for n < size {
		b, err := r.ReadBit()
		if err != nil {
			return 0, 0, err
		}
		if b == 0 {
			break
		}
		for n < size-1 {
			bb, err := r.ReadBit()
			if err != nil {
				return 0, 0, err
			}
			if bb != 0 {
				break
			}
			n++
		}
		x |= 1 << uint(n)
		n++
	}
	return x, n, nil
}

// TestEncodePlaneMatchesScalar drives random plane sequences through the
// batch and scalar encoders and requires bit-identical streams plus
// identical significance tracking.
func TestEncodePlaneMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, size := range []int{1, 2, 4, 15, 16, 17, 63, 64} {
		for trial := 0; trial < 400; trial++ {
			var fast, slow bitstream.Writer
			nf, ns := 0, 0
			planes := 1 + rng.Intn(20)
			for p := 0; p < planes; p++ {
				x := rng.Uint64() & rng.Uint64() // sparse-ish
				if rng.Intn(4) == 0 {
					x = rng.Uint64() // sometimes dense
				}
				if size < 64 {
					x &= 1<<uint(size) - 1
				}
				nf = encodePlane(&fast, x, size, nf)
				ns = encodePlaneScalar(&slow, x, size, ns)
				if nf != ns {
					t.Fatalf("size=%d trial=%d plane=%d: n %d != scalar %d", size, trial, p, nf, ns)
				}
			}
			fb, sb := fast.Bytes(), slow.Bytes()
			if string(fb) != string(sb) {
				t.Fatalf("size=%d trial=%d: stream mismatch\nbatch:  %x\nscalar: %x", size, trial, fb, sb)
			}
		}
	}
}

// TestDecodePlaneMatchesScalar decodes scalar-encoded streams with the
// window decoder and vice versa, including truncated suffixes, asserting
// identical planes, significance counts, and error outcomes.
func TestDecodePlaneMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, size := range []int{1, 2, 4, 16, 64} {
		for trial := 0; trial < 300; trial++ {
			var w bitstream.Writer
			n := 0
			planes := 1 + rng.Intn(16)
			var want []uint64
			for p := 0; p < planes; p++ {
				x := rng.Uint64() & rng.Uint64() & rng.Uint64()
				if size < 64 {
					x &= 1<<uint(size) - 1
				}
				want = append(want, x)
				n = encodePlaneScalar(&w, x, size, n)
			}
			buf := w.Bytes()

			// Full stream: both decoders must agree with the encoder input.
			rFast := bitstream.NewReader(buf)
			rSlow := bitstream.NewReader(buf)
			nf, ns := 0, 0
			for p := 0; p < planes; p++ {
				xf, nf2, errF := decodePlane(rFast, size, nf)
				xs, ns2, errS := decodePlaneScalar(rSlow, size, ns)
				if (errF == nil) != (errS == nil) {
					t.Fatalf("size=%d trial=%d plane=%d: err mismatch %v vs %v", size, trial, p, errF, errS)
				}
				if errF != nil {
					break
				}
				if xf != xs || nf2 != ns2 {
					t.Fatalf("size=%d trial=%d plane=%d: (%#x,%d) != scalar (%#x,%d)",
						size, trial, p, xf, nf2, xs, ns2)
				}
				if xf != want[p] {
					t.Fatalf("size=%d trial=%d plane=%d: decoded %#x, want %#x", size, trial, p, xf, want[p])
				}
				nf, ns = nf2, ns2
			}

			// Truncated stream: error behaviour must match bit for bit.
			if len(buf) > 1 {
				cut := rng.Intn(len(buf)-1) + 1
				tFast := bitstream.NewReader(buf[:cut])
				tSlow := bitstream.NewReader(buf[:cut])
				nf, ns = 0, 0
				for p := 0; p < planes; p++ {
					xf, nf2, errF := decodePlane(tFast, size, nf)
					xs, ns2, errS := decodePlaneScalar(tSlow, size, ns)
					if (errF == nil) != (errS == nil) {
						t.Fatalf("size=%d trial=%d cut=%d plane=%d: err mismatch %v vs %v",
							size, trial, cut, p, errF, errS)
					}
					if errF != nil {
						break
					}
					if xf != xs || nf2 != ns2 {
						t.Fatalf("size=%d trial=%d cut=%d plane=%d: value mismatch", size, trial, cut, p)
					}
					nf, ns = nf2, ns2
				}
			}
		}
	}
}

// TestTransposeTopMatchesFull verifies the prefix-limited butterfly against
// the full anti-transpose for every prefix length.
func TestTransposeTopMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		var src [64]uint64
		for i := range src {
			src[i] = rng.Uint64()
		}
		full := src
		transpose64(&full)
		for rows := 0; rows <= 64; rows++ {
			top := src
			transposeTop(&top, rows)
			for i := 0; i < rows; i++ {
				if top[i] != full[i] {
					t.Fatalf("trial=%d rows=%d: word %d = %#x, want %#x", trial, rows, i, top[i], full[i])
				}
			}
		}
	}
}

// TestEncodePlanesMatchesScalarPath cross-checks the transpose fast path of
// encodePlanes/decodePlanes against the generic per-plane extraction loop
// (the scalar slicing path, still live for rank<3 blocks).
func TestEncodePlanesMatchesScalarPath(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		nb := make([]uint64, 64)
		for i := range nb {
			nb[i] = rng.Uint64() >> uint(rng.Intn(60))
		}
		for _, kmin := range []int{4, 16, 32, 48, 60, 63, 64} {
			var fast, slow bitstream.Writer
			// encodePlanes consumes its scratch (in-place transpose), so
			// feed it a copy and keep nb for the scalar reference.
			scratch := append([]uint64(nil), nb...)
			encodePlanes(&fast, scratch, 64, kmin)
			// Scalar slicing path: extract each plane bit by bit.
			n := 0
			for k := intprec - 1; k >= kmin; k-- {
				var plane uint64
				for i := 0; i < 64; i++ {
					plane |= (nb[i] >> uint(k) & 1) << uint(i)
				}
				n = encodePlaneScalar(&slow, plane, 64, n)
			}
			if string(fast.Bytes()) != string(slow.Bytes()) {
				t.Fatalf("trial=%d kmin=%d: fast path stream != scalar slicing stream", trial, kmin)
			}

			got := make([]uint64, 64)
			if err := decodePlanes(bitstream.NewReader(fast.Bytes()), got, 64, kmin); err != nil {
				t.Fatalf("trial=%d kmin=%d: decodePlanes: %v", trial, kmin, err)
			}
			mask := ^uint64(0) << uint(kmin)
			if kmin >= 64 {
				mask = 0
			}
			for i := range nb {
				if got[i] != nb[i]&mask {
					t.Fatalf("trial=%d kmin=%d: coeff %d = %#x, want %#x", trial, kmin, i, got[i], nb[i]&mask)
				}
			}
		}
	}
}

// TestCompressMatchesAcrossWorkerCounts asserts stream identity over random
// fields for a spread of worker counts, with the cutover both on and off.
func TestCompressMatchesAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	f := grid.New(24, 20, 28)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
	}
	for _, c := range []*Codec{MustNew(16), MustNewAccuracy(1e-7), MustNewRate(9)} {
		serial, err := c.WithWorkers(1).Compress(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			for _, minShard := range []int64{0, -1, 1 << 30} {
				cc := c.WithParallel(parallel.Config{Workers: workers, MinShardBytes: minShard})
				enc, err := cc.Compress(f)
				if err != nil {
					t.Fatal(err)
				}
				if string(enc) != string(serial) {
					t.Fatalf("%s workers=%d minShard=%d: stream differs from serial", c.Name(), workers, minShard)
				}
				back, err := cc.Decompress(enc)
				if err != nil {
					t.Fatal(err)
				}
				if back.Len() != f.Len() {
					t.Fatal("round trip length mismatch")
				}
			}
		}
	}
}

var _ compress.ParallelTunable = (*Codec)(nil)

package zfp

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"lrm/internal/grid"
)

// TestParallelByteIdentity is the codec-level golden test: every mode must
// emit the identical bit stream at any worker count, and decode the
// parallel-produced stream to the identical field with any worker count.
func TestParallelByteIdentity(t *testing.T) {
	shapes := [][]int{{5}, {64}, {257}, {7, 9}, {16, 16}, {4, 4, 4}, {9, 10, 11}}
	codecs := []*Codec{
		MustNew(16),
		MustNew(32),
		MustNewAccuracy(1e-4),
		MustNewRate(12),
	}
	rng := rand.New(rand.NewSource(7))
	for _, dims := range shapes {
		f := grid.New(dims...)
		for i := range f.Data {
			f.Data[i] = math.Sin(float64(i)/7) * math.Exp(rng.Float64())
		}
		for _, serial := range codecs {
			want, err := serial.WithWorkers(1).Compress(f)
			if err != nil {
				t.Fatalf("%s %v: serial: %v", serial.Name(), dims, err)
			}
			for _, w := range []int{2, 4, 8} {
				got, err := serial.WithWorkers(w).Compress(f)
				if err != nil {
					t.Fatalf("%s %v w=%d: %v", serial.Name(), dims, w, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s %v: workers=%d stream differs from serial", serial.Name(), dims, w)
				}
				dec1, err := serial.WithWorkers(1).Decompress(want)
				if err != nil {
					t.Fatalf("%s %v: serial decompress: %v", serial.Name(), dims, err)
				}
				decW, err := serial.WithWorkers(w).Decompress(want)
				if err != nil {
					t.Fatalf("%s %v w=%d: decompress: %v", serial.Name(), dims, w, err)
				}
				for i := range dec1.Data {
					if math.Float64bits(dec1.Data[i]) != math.Float64bits(decW.Data[i]) {
						t.Fatalf("%s %v w=%d: decoded value %d differs bitwise", serial.Name(), dims, w, i)
					}
				}
			}
		}
	}
}

// TestWithWorkersDoesNotMutate checks WithWorkers is a copy, as its contract
// promises: concurrent pipelines can hold different pool sizes on one codec.
func TestWithWorkersDoesNotMutate(t *testing.T) {
	c := MustNew(20)
	p := c.WithWorkers(8)
	if c.workers != 0 {
		t.Fatalf("WithWorkers mutated the receiver: workers=%d", c.workers)
	}
	if pc, ok := p.(*Codec); !ok || pc.workers != 8 {
		t.Fatalf("WithWorkers(8) returned %#v", p)
	}
	if c.Name() != p.Name() {
		t.Fatalf("worker count leaked into Name: %q vs %q", c.Name(), p.Name())
	}
}

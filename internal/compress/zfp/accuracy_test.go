package zfp

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewAccuracyValidation(t *testing.T) {
	for _, tol := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewAccuracy(tol); err == nil {
			t.Fatalf("expected error for tolerance %v", tol)
		}
	}
	c := MustNewAccuracy(1e-4)
	if c.Name() != "zfp(a=1e-04)" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.Lossless() {
		t.Fatal("accuracy mode is lossy")
	}
}

func TestAccuracyBoundHonoured(t *testing.T) {
	f := smooth3D(16)
	for _, tol := range []float64{1e-1, 1e-3, 1e-6, 1e-9} {
		c := MustNewAccuracy(tol)
		enc, err := c.Compress(f)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f.Data {
			if e := math.Abs(f.Data[i] - dec.Data[i]); e > tol {
				t.Fatalf("tol=%v: error %v at %d exceeds tolerance", tol, e, i)
			}
		}
	}
}

func TestAccuracyBoundOnWideDynamicRange(t *testing.T) {
	// The accuracy guarantee is absolute, so blocks far below the tolerance
	// must cost almost nothing while large blocks stay within bound.
	f := noisy3D(12, 3)
	for i := range f.Data {
		f.Data[i] *= math.Ldexp(1, (i%40)-20) // magnitudes 2^-20..2^19
	}
	tol := 1e-3
	c := MustNewAccuracy(tol)
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if e := math.Abs(f.Data[i] - dec.Data[i]); e > tol {
			t.Fatalf("error %v at %d exceeds tolerance", e, i)
		}
	}
}

func TestAccuracyLooserToleranceSmallerStream(t *testing.T) {
	f := noisy3D(16, 9)
	var prev int = 1 << 30
	for _, tol := range []float64{1e-9, 1e-6, 1e-3, 1e-1} {
		enc, err := MustNewAccuracy(tol).Compress(f)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) > prev {
			t.Fatalf("tol=%v produced larger stream (%d) than tighter tolerance (%d)", tol, len(enc), prev)
		}
		prev = len(enc)
	}
}

func TestAccuracySmallMagnitudeBlocksNearlyFree(t *testing.T) {
	// A field whose values sit far below the tolerance compresses to
	// almost nothing (each block still pays its 16-bit header).
	f := smooth3D(16)
	for i := range f.Data {
		f.Data[i] *= 1e-9
	}
	enc, err := MustNewAccuracy(1.0).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	blocks := 4 * 4 * 4
	// Header (~4B) + per block 1 flag bit + 15-bit exponent = 2 bytes.
	if len(enc) > 8+3*blocks {
		t.Fatalf("sub-tolerance field encoded to %d bytes", len(enc))
	}
}

func TestAccuracyModeStreamGarbage(t *testing.T) {
	c := MustNew(16)
	cases := [][]byte{
		{1, 4, 1},                               // accuracy mode, missing tolerance
		{1, 4, 1, 0, 0, 0, 0, 0, 0, 0, 0},       // tolerance = 0
		{1, 4, 7, 0},                            // unknown mode
		{1, 4, 1, 0, 0, 0, 0, 0, 0, 0xf0, 0x7f}, // tolerance = +Inf
	}
	for i, b := range cases {
		if _, err := c.Decompress(b); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestAccuracyCrossModeDecode(t *testing.T) {
	// Streams are self-describing: a precision-configured codec must decode
	// an accuracy-mode stream and vice versa.
	f := smooth3D(8)
	encA, err := MustNewAccuracy(1e-5).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := MustNew(8).Decompress(encA)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-dec.Data[i]) > 1e-5 {
			t.Fatalf("cross-mode decode violated bound at %d", i)
		}
	}
	encP, err := MustNew(24).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MustNewAccuracy(1).Decompress(encP); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyRandomizedBoundQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(14)
		f := noisy3D(n, int64(trial))
		tol := math.Ldexp(1, -rng.Intn(30))
		c := MustNewAccuracy(tol)
		enc, err := c.Compress(f)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f.Data {
			if e := math.Abs(f.Data[i] - dec.Data[i]); e > tol {
				t.Fatalf("trial %d (n=%d tol=%v): error %v at %d", trial, n, tol, e, i)
			}
		}
	}
}

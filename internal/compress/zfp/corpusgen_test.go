package zfp

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lrm/internal/grid"
)

func TestGenerateCorpus(t *testing.T) {
	if os.Getenv("LRM_GEN_CORPUS") == "" {
		t.Skip("set LRM_GEN_CORPUS=1 to regenerate testdata/fuzz seeds")
	}
	field := grid.New(6, 6)
	for i := range field.Data {
		field.Data[i] = float64(i) / 7
	}
	seeds := map[string][]byte{}
	for name, c := range map[string]*Codec{
		"precision": MustNew(8),
		"accuracy":  MustNewAccuracy(1e-3),
		"rate":      MustNewRate(8),
	} {
		enc, err := c.Compress(field)
		if err != nil {
			t.Fatal(err)
		}
		seeds[name] = enc
	}
	seeds["truncated"] = seeds["precision"][:len(seeds["precision"])/2]
	seeds["garbage"] = []byte("\x00\x01\x02\xff\xfe\xfd not a zfp stream")
	dir := filepath.Join("testdata", "fuzz", "FuzzDecompress")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

package zfp

import (
	"errors"
	"testing"

	"lrm/internal/compress"
	"lrm/internal/grid"
)

// TestDecompressEveryPrefix asserts the decode contract on truncation across
// all three modes (precision, accuracy, fixed rate): every strict prefix of
// a valid stream must fail with an error wrapping compress.ErrTruncated or
// compress.ErrCorrupt — never panic, never decode to a field.
func TestDecompressEveryPrefix(t *testing.T) {
	f := grid.New(10, 6)
	for j := 0; j < 10; j++ {
		for i := 0; i < 6; i++ {
			f.Set2(float64(j)*0.2-float64(i)*0.4, j, i)
		}
	}
	for _, c := range []*Codec{
		MustNew(14),
		MustNewAccuracy(1e-4),
		MustNewRate(10),
	} {
		enc, err := c.Compress(f)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for n := 0; n < len(enc); n++ {
			_, err := c.Decompress(enc[:n])
			if err == nil {
				t.Fatalf("%s: prefix %d/%d decoded without error", c.Name(), n, len(enc))
			}
			if !errors.Is(err, compress.ErrTruncated) && !errors.Is(err, compress.ErrCorrupt) {
				t.Fatalf("%s: prefix %d/%d: unclassified error: %v", c.Name(), n, len(enc), err)
			}
		}
	}
}

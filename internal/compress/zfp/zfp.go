// Package zfp implements a fixed-precision transform codec modeled on
// Lindstrom's ZFP (TVCG 2014), the lossy compressor the paper evaluates in
// fixed-precision mode.
//
// The pipeline follows the three steps the paper describes (Section II-A):
//
//  1. Alignment: each 4^d block is aligned to a common exponent and
//     converted to fixed-point signed integers.
//  2. Decorrelation: a reversible integer lifting transform (ZFP's
//     orthogonal-ish basis) is applied along each dimension, concentrating
//     block energy into few low-frequency coefficients.
//  3. Embedded encoding: coefficients are mapped to negabinary and coded one
//     bit plane at a time with group testing, keeping exactly `Precision`
//     planes per block.
//
// Compression is therefore data dependent exactly like real ZFP: smooth
// blocks produce long zero runs in the high bit planes and cost almost
// nothing, while noisy blocks pay the full bit budget.
//
// Blocks are mutually independent, which the codec exploits two ways: the
// encoder shards the block list across a bounded worker pool (each shard
// writes a private bitstream, concatenated in shard order, so the output
// is byte-identical to a serial pass at any worker count), and the decoder
// runs the inverse transform + scatter of already-parsed blocks in
// parallel. Workers == 1 reproduces the serial execution exactly.
package zfp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"time"

	"lrm/internal/bitstream"
	"lrm/internal/compress"
	"lrm/internal/grid"
	"lrm/internal/invariant"
	"lrm/internal/obs"
	"lrm/internal/obs/trace"
	"lrm/internal/parallel"
)

// Hoisted observability metrics. The per-block kernels are far too hot for
// a span per block, so each shard snapshots obs.Enabled() once, accumulates
// plain local nanosecond/count tallies, and flushes them here at shard end
// (the accumulate-then-flush pattern from internal/obs).
var (
	obsBlocks      = obs.GetCounter("zfp.blocks")
	obsEmptyBlocks = obs.GetCounter("zfp.empty_blocks")
	obsPlanesHist  = obs.GetHistogram("zfp.planes_per_block", []int64{8, 16, 24, 32, 40, 48, 56, 64})
)

// Codec is a ZFP-style compressor in one of two modes, mirroring real
// ZFP's fixed-precision and fixed-accuracy modes. The zero value is not
// usable; construct with New or NewAccuracy.
type Codec struct {
	mode      byte    // modePrecision, modeAccuracy, or modeRate
	precision uint    // bit planes kept per block (precision mode), 1..60
	tolerance float64 // absolute error tolerance (accuracy mode)
	rate      uint    // bits per value (rate mode), 1..62
	workers   int     // worker pool size; 0 = parallel.DefaultWorkers()
	minShard  int64   // size-aware cutover; see parallel.Config.MinShardBytes
}

// Stream/codec modes.
const (
	modePrecision byte = 0
	modeAccuracy  byte = 1
)

// MaxPrecision is the largest representable number of bit planes.
const MaxPrecision = 60

// fixedPointBits positions block values at 2^fixedPointBits, leaving
// headroom for the lifting transform's range expansion (< 4x in 3-D).
const fixedPointBits = 60

// intprec is the total number of negabinary bit planes per coefficient.
const intprec = 64

// minParallelBlocks is the block count below which forking the pool costs
// more than the encode itself; smaller fields stay on the calling goroutine.
const minParallelBlocks = 16

// New returns a codec that keeps precision bit planes per block (the
// paper's "16 bits of precision" corresponds to New(16)).
func New(precision int) (*Codec, error) {
	if precision < 1 || precision > MaxPrecision {
		return nil, fmt.Errorf("zfp: precision %d out of range [1,%d]", precision, MaxPrecision)
	}
	return &Codec{mode: modePrecision, precision: uint(precision)}, nil
}

// NewAccuracy returns a fixed-accuracy codec: every decompressed value is
// within tol of the original (absolute error bound), with the bit budget
// varying per block — large-magnitude blocks spend more planes. This is
// ZFP's -a mode.
func NewAccuracy(tol float64) (*Codec, error) {
	if tol <= 0 || math.IsNaN(tol) || math.IsInf(tol, 0) {
		return nil, fmt.Errorf("zfp: invalid tolerance %v", tol)
	}
	return &Codec{mode: modeAccuracy, tolerance: tol}, nil
}

// MustNewAccuracy is NewAccuracy but panics on invalid tolerance.
func MustNewAccuracy(tol float64) *Codec {
	c, err := NewAccuracy(tol)
	if err != nil {
		panic(err)
	}
	return c
}

// MustNew is New but panics on invalid precision; for use in tables.
func MustNew(precision int) *Codec {
	c, err := New(precision)
	if err != nil {
		panic(err)
	}
	return c
}

// WithWorkers returns a copy of c that runs its kernels on a pool of the
// given size. 1 forces serial execution; 0 restores the default
// (GOMAXPROCS). Output is byte-identical at every worker count, so the
// knob trades only latency, never format.
func (c *Codec) WithWorkers(workers int) compress.Codec {
	cp := *c
	cp.workers = workers
	return &cp
}

// WithParallel returns a copy of c bound to a full parallel config: the
// worker budget plus the size-aware cutover threshold. The zero config
// restores all defaults. Implements compress.ParallelTunable.
func (c *Codec) WithParallel(cfg parallel.Config) compress.Codec {
	cp := *c
	cp.workers = cfg.Workers
	cp.minShard = cfg.MinShardBytes
	return &cp
}

// workerCount resolves the effective pool size for an input of totalBytes
// (8 bytes per sample), applying the size-aware cutover: small inputs run
// serially no matter the budget, because forking the pool costs more than
// it saves below ~half a MiB per shard.
func (c *Codec) workerCount(totalBytes int64) int {
	return parallel.Config{Workers: c.workers, MinShardBytes: c.minShard}.WorkersFor(totalBytes)
}

// Name implements compress.Codec.
func (c *Codec) Name() string {
	switch c.mode {
	case modeAccuracy:
		return fmt.Sprintf("zfp(a=%.0e)", c.tolerance)
	case modeRate:
		return fmt.Sprintf("zfp(r=%d)", c.rate)
	default:
		return fmt.Sprintf("zfp(p=%d)", c.precision)
	}
}

// Lossless implements compress.Codec.
func (c *Codec) Lossless() bool { return false }

// Precision returns the configured number of bit planes (precision mode).
func (c *Codec) Precision() int { return int(c.precision) }

// AbsErrorBound implements compress.ErrorBounded: only accuracy mode
// guarantees a pointwise absolute bound; precision and rate modes trade
// accuracy per block.
func (c *Codec) AbsErrorBound(f *grid.Field) (float64, bool) {
	if c.mode == modeAccuracy {
		return c.tolerance, true
	}
	return 0, false
}

// kminFor returns the lowest bit plane to encode for a block with max
// exponent emax. In precision mode it is a fixed count from the top; in
// accuracy mode it is the plane whose weight (in value units, after the
// transform's <8x amplification headroom) first drops below the tolerance.
func kminFor(mode byte, precision uint, tolerance float64, emax int) int {
	if mode == modePrecision {
		return intprec - int(precision)
	}
	// tolerance = f * 2^e with f in [0.5,1), so floor(log2 tol) = e-1.
	_, e := math.Frexp(tolerance)
	// Plane k carries value weight 2^(k - fixedPointBits + emax); reserve
	// 4 bits for negabinary carry + inverse-transform amplification in 3-D.
	kmin := (e - 1) + fixedPointBits - 4 - emax
	if kmin < intprec-MaxPrecision {
		kmin = intprec - MaxPrecision
	}
	if kmin > intprec {
		kmin = intprec
	}
	return kmin
}

// negabinary mask: converts two's complement to negabinary and back.
const nbmask = 0xaaaaaaaaaaaaaaaa

func int2nb(i int64) uint64 { return (uint64(i) + nbmask) ^ nbmask }
func nb2int(u uint64) int64 { return int64((u ^ nbmask) - nbmask) }

// fwdLift applies ZFP's forward decorrelating lifting step to a stride-s
// 4-vector in p.
func fwdLift(p []int64, base, s int) {
	x := p[base]
	y := p[base+s]
	z := p[base+2*s]
	w := p[base+3*s]

	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1

	p[base] = x
	p[base+s] = y
	p[base+2*s] = z
	p[base+3*s] = w
}

// invLift is the exact inverse of fwdLift.
func invLift(p []int64, base, s int) {
	x := p[base]
	y := p[base+s]
	z := p[base+2*s]
	w := p[base+3*s]

	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w

	p[base] = x
	p[base+s] = y
	p[base+2*s] = z
	p[base+3*s] = w
}

// transformForward decorrelates a 4^rank block along every dimension.
func transformForward(blk []int64, rank int) {
	switch rank {
	case 1:
		fwdLift(blk, 0, 1)
	case 2:
		for y := 0; y < 4; y++ { // along x
			fwdLift(blk, 4*y, 1)
		}
		for x := 0; x < 4; x++ { // along y
			fwdLift(blk, x, 4)
		}
	case 3:
		// The 48 lifts of a full 3-D block run on a fixed-size array view
		// through the value-form lift4, whose inlined body keeps each
		// 4-vector in registers: constant indices eliminate the bounds
		// checks and the load/store traffic of the slice-based fwdLift.
		// Lifts within one pass touch disjoint 4-vectors, so this is the
		// same computation in the same pass order.
		p := (*[64]int64)(blk)
		for b := 0; b <= 60; b += 4 { // along x
			p[b], p[b+1], p[b+2], p[b+3] = lift4(p[b], p[b+1], p[b+2], p[b+3])
		}
		for z := 0; z < 64; z += 16 { // along y
			for i := z; i < z+4; i++ {
				p[i], p[i+4], p[i+8], p[i+12] = lift4(p[i], p[i+4], p[i+8], p[i+12])
			}
		}
		for i := 0; i < 16; i++ { // along z
			p[i], p[i+16], p[i+32], p[i+48] = lift4(p[i], p[i+16], p[i+32], p[i+48])
		}
	}
}

// lift4 is fwdLift in value form: same operations in the same order, but on
// register operands so call sites with constant indices inline to pure
// register arithmetic.
func lift4(x, y, z, w int64) (int64, int64, int64, int64) {
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	return x, y, z, w
}

// transformInverse undoes transformForward (reverse order, inverse steps).
func transformInverse(blk []int64, rank int) {
	switch rank {
	case 1:
		invLift(blk, 0, 1)
	case 2:
		for x := 0; x < 4; x++ {
			invLift(blk, x, 4)
		}
		for y := 0; y < 4; y++ {
			invLift(blk, 4*y, 1)
		}
	case 3:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				invLift(blk, 4*y+x, 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				invLift(blk, 16*z+x, 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				invLift(blk, 16*z+4*y, 1)
			}
		}
	}
}

// transpose64 anti-transposes the 64x64 bit matrix held in m in place:
// bit j of output word i equals bit 63-i of input word 63-j (the classic
// Hacker's Delight word-swap network, which transposes under the
// column-j-is-bit-63-j convention). The operation is an involution. The
// plane packers below compose it with reversed word indexing to get the
// plain transpose they need, converting a block's 64 negabinary
// coefficients into its 64 bit-plane words (and back) in ~6*64 word
// operations instead of the scalar coder's 64 steps per plane.
func transpose64(m *[64]uint64) {
	j := uint(32)
	mask := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < 64; k = (k + int(j) + 1) &^ int(j) {
			t := (m[k] ^ (m[k+int(j)] >> j)) & mask
			m[k] ^= t
			m[k+int(j)] ^= t << j
		}
		j >>= 1
		mask ^= mask << j
	}
}

// transposeTop is transpose64 restricted to the first `rows` output words:
// words [0, rows) equal the full anti-transpose, words beyond hold
// unspecified values. The butterfly stage with span j only has to cover the
// prefix rounded up to a whole 2j-aligned pair block — working backwards
// from the needed outputs, stage j must produce roundup(rows, j) correct
// words from roundup(rows, 2j) correct inputs — so the per-stage pair count
// shrinks geometrically instead of staying at 32. The precision-16 encoder
// reads only 16 of the 64 plane words, which cuts the butterfly count from
// 192 to 80.
func transposeTop(m *[64]uint64, rows int) {
	if rows >= 64 {
		transpose64(m)
		return
	}
	if rows <= 0 {
		return
	}
	if rows <= 16 {
		transposeTop16(m)
		return
	}
	j := uint(32)
	mask := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		lim := (rows + int(2*j) - 1) &^ int(2*j-1) // roundup(rows, 2j)
		if lim > 64 {
			lim = 64
		}
		for k := 0; k < lim; k = (k + int(j) + 1) &^ int(j) {
			t := (m[k] ^ (m[k+int(j)] >> j)) & mask
			m[k] ^= t
			m[k+int(j)] ^= t << j
		}
		j >>= 1
		mask ^= mask << j
	}
}

// transposeTop16 is transposeTop specialised to rows <= 16 — the hot shape:
// the default precision-16 encoder reads exactly 16 plane words. The six
// butterfly stages are written out with constant spans and constant loop
// bounds so the compiler drops every bounds check and can schedule the
// independent butterflies across execution ports; the generic loop's
// bit-trick index stepping defeats both. The butterflies performed are
// exactly those of the generic prefix-limited network (80 in total), so
// words [0, 16) hold the same values.
func transposeTop16(m *[64]uint64) {
	// The first two stages skip the partner write-back: stage j=32 feeds
	// only words [0,32) to stage j=16, and j=16 feeds only [0,16) onward,
	// so the upper-half updates are dead here. With the write-back gone the
	// xor butterfly a ^= (a^(b>>j))&mask folds to the masked merge
	// a&^mask | (b>>j)&mask — identical low words, fewer operations.
	for k := 0; k < 32; k++ { // j=32, lim=64
		m[k] = m[k]&^0x00000000FFFFFFFF | m[k+32]>>32
	}
	for k := 0; k < 16; k++ { // j=16, lim=32
		m[k] = m[k]&^0x0000FFFF0000FFFF | m[k+16]>>16&0x0000FFFF0000FFFF
	}
	for k := 0; k < 8; k++ { // j=8, lim=16
		t := (m[k] ^ (m[k+8] >> 8)) & 0x00FF00FF00FF00FF
		m[k] ^= t
		m[k+8] ^= t << 8
	}
	for base := 0; base < 16; base += 8 { // j=4, lim=16
		for k := base; k < base+4; k++ {
			t := (m[k] ^ (m[k+4] >> 4)) & 0x0F0F0F0F0F0F0F0F
			m[k] ^= t
			m[k+4] ^= t << 4
		}
	}
	for base := 0; base < 16; base += 4 { // j=2, lim=16
		for k := base; k < base+2; k++ {
			t := (m[k] ^ (m[k+2] >> 2)) & 0x3333333333333333
			m[k] ^= t
			m[k+2] ^= t << 2
		}
	}
	for k := 0; k < 16; k += 2 { // j=1, lim=16
		t := (m[k] ^ (m[k+1] >> 1)) & 0x5555555555555555
		m[k] ^= t
		m[k+1] ^= t << 1
	}
}

// encodePlane writes one bit plane x (bit i of x = plane bit of value i)
// using ZFP's verbatim-prefix + group-tested run-length scheme. n is the
// count of values already known significant; the updated n is returned.
//
// The emitted stream is "test 1, zero run, terminating 1" per significant
// value, so instead of walking the plane bit by bit the loop jumps from set
// bit to set bit with TrailingZeros64 and emits each whole group — test
// bit, run, terminator — as one value through a 64-bit accumulator. A dense
// plane costs a couple of WriteBits calls; a sparse one costs one per set
// bit, never one per zero.
func encodePlane(w *bitstream.Writer, x uint64, size, n int) int {
	if n > 0 {
		// Verbatim prefix: the low n bits of x, least significant first.
		w.WriteBits(bits.Reverse64(x)>>(64-uint(n)), uint(n))
		x >>= uint(n)
	}
	var acc uint64
	var cnt uint
	for n < size {
		if x == 0 {
			// Group test fails: a single 0 ends the plane.
			if cnt == 64 {
				w.WriteBits(acc, 64)
				acc, cnt = 0, 0
			}
			acc <<= 1
			cnt++
			break
		}
		tz := bits.TrailingZeros64(x)
		var v uint64
		var k uint
		if tz >= size-1-n {
			// The next set bit sits at the plane's final position: the
			// terminating 1 is implicit, so the group is the test bit plus
			// the zero run only.
			k = uint(size - n)
			v = 1 << (k - 1)
			n = size
		} else {
			// Test bit, tz zeros, terminating 1 — one batch of tz+2 bits.
			k = uint(tz) + 2
			v = 1<<(k-1) | 1
			x >>= uint(tz + 1)
			n += tz + 1
		}
		if cnt+k > 64 {
			w.WriteBits(acc, cnt)
			acc, cnt = 0, 0
		}
		acc = acc<<k | v
		cnt += k
	}
	if cnt > 0 {
		w.WriteBits(acc, cnt)
	}
	return n
}

// decodePlane mirrors encodePlane: one Peek64 window exposes the test bit
// and the whole zero run at once, so LeadingZeros64 replaces the per-bit
// read loop. Availability is checked against Remaining before every
// Advance, which reproduces the per-bit reader's ErrOutOfBits behaviour on
// truncated streams (window positions past the end read as zero and are
// never consumed).
func decodePlane(r *bitstream.Reader, size, n int) (uint64, int, error) {
	var x uint64
	if n > 0 {
		// The verbatim prefix was emitted least-significant-bit first.
		v, err := r.ReadBits(uint(n))
		if err != nil {
			return 0, 0, err
		}
		x = bits.Reverse64(v) >> (64 - uint(n))
	}
	for n < size {
		rem := r.Remaining()
		if rem == 0 {
			return 0, 0, bitstream.ErrOutOfBits
		}
		win := r.Peek64()
		if win>>63 == 0 {
			// Group test fails: the plane holds no further set bits.
			r.Advance(1)
			break
		}
		lim := size - 1 - n
		z := bits.LeadingZeros64(win << 1) // zeros after the test bit
		if z >= lim {
			// The run reaches the final position; its 1 is implicit. The
			// encoder emitted 1+lim bits, all of which must really exist.
			if rem < 1+lim {
				return 0, 0, bitstream.ErrOutOfBits
			}
			r.Advance(1 + lim)
			x |= 1 << uint(size-1)
			n = size
		} else {
			// A genuine 1 inside the window is never padding, so the z+2
			// consumed bits are guaranteed present; the check is defensive.
			if rem < z+2 {
				return 0, 0, bitstream.ErrOutOfBits
			}
			r.Advance(z + 2)
			x |= 1 << uint(n+z)
			n += z + 1
		}
	}
	return x, n, nil
}

// Sequency-order permutations: after the decorrelating transform,
// coefficients are stored ordered by total sequency (the sum of per-
// dimension frequency indices), exactly like real ZFP's PERM tables. Low
// frequencies — the large coefficients of smooth blocks — cluster at the
// front, so the group-tested bit-plane coder terminates its scans early.
var (
	perm1 = sequencyPerm(1)
	perm2 = sequencyPerm(2)
	perm3 = sequencyPerm(3)
)

// permFor returns the coefficient permutation for a rank.
func permFor(rank int) []int {
	switch rank {
	case 1:
		return perm1
	case 2:
		return perm2
	default:
		return perm3
	}
}

// sequencyPerm builds the index ordering by total sequency with index
// order as the (stable) tie-break.
func sequencyPerm(rank int) []int {
	size := 1 << (2 * uint(rank))
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	seq := func(i int) int {
		s := 0
		for d := 0; d < rank; d++ {
			s += (i >> (2 * uint(d))) & 3
		}
		return s
	}
	// Stable insertion sort by sequency (tiny fixed-size input).
	for a := 1; a < size; a++ {
		for b := a; b > 0 && seq(idx[b]) < seq(idx[b-1]); b-- {
			idx[b], idx[b-1] = idx[b-1], idx[b]
		}
	}
	return idx
}

// blockShape describes the valid extents of one (possibly partial) block.
type blockShape struct {
	origin [3]int // block origin in field coordinates (unused dims = 0)
	size   [3]int // valid samples per dim, 1..4 (unused dims = 1)
}

// blockCount returns the number of 4^rank blocks covering dims without
// materialising them (hostile headers can claim millions of blocks).
func blockCount(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= (d + 3) / 4
	}
	return n
}

// blocks enumerates the block grid of a field in raster order.
func blocks(dims []int) []blockShape {
	d := [3]int{1, 1, 1}
	for i, v := range dims {
		d[3-len(dims)+i] = v
	}
	out := make([]blockShape, 0, blockCount(dims))
	for z := 0; z < d[0]; z += 4 {
		for y := 0; y < d[1]; y += 4 {
			for x := 0; x < d[2]; x += 4 {
				b := blockShape{origin: [3]int{z, y, x}}
				b.size[0] = min(4, d[0]-z)
				b.size[1] = min(4, d[1]-y)
				b.size[2] = min(4, d[2]-x)
				out = append(out, b)
			}
		}
	}
	return out
}

// gather copies one block into blk (64 entries max used: 4^rank), padding
// partial blocks by replicating the last valid sample along each dimension.
func gather(f *grid.Field, b blockShape, vals []float64) {
	rank := f.Rank()
	// Normalised dims: treat every field as (ny, nx) with leading 1s; the
	// z extent only shapes the block, never the flat index.
	var ny, nx int
	switch rank {
	case 1:
		ny, nx = 1, f.Dims[0]
	case 2:
		ny, nx = f.Dims[0], f.Dims[1]
	default:
		ny, nx = f.Dims[1], f.Dims[2]
	}
	// Full-block fast path: every row of a complete block is 4 contiguous
	// samples, so the interior (the vast majority of blocks on non-tiny
	// fields) copies rows directly with no per-sample clamping.
	// The 4-sample rows are moved as array assignments rather than copy():
	// a 32-byte memmove call costs more in call overhead than the move
	// itself, and these run once per row of every block.
	if b.size == [3]int{1, 4, 4} && rank == 2 {
		base := b.origin[1]*nx + b.origin[2]
		for y := 0; y < 4; y++ {
			*(*[4]float64)(vals[4*y : 4*y+4]) = *(*[4]float64)(f.Data[base+y*nx : base+y*nx+4])
		}
		return
	}
	if b.size == [3]int{4, 4, 4} && rank == 3 {
		base := (b.origin[0]*ny+b.origin[1])*nx + b.origin[2]
		for z := 0; z < 4; z++ {
			row := base + z*ny*nx
			for y := 0; y < 4; y++ {
				*(*[4]float64)(vals[16*z+4*y : 16*z+4*y+4]) = *(*[4]float64)(f.Data[row+y*nx : row+y*nx+4])
			}
		}
		return
	}
	at := func(z, y, x int) float64 {
		return f.Data[(z*ny+y)*nx+x]
	}
	zl, yl, xl := 4, 4, 4
	if rank < 3 {
		zl = 1
	}
	if rank < 2 {
		yl = 1
	}
	for z := 0; z < zl; z++ {
		sz := b.origin[0] + min(z, b.size[0]-1)
		for y := 0; y < yl; y++ {
			sy := b.origin[1] + min(y, b.size[1]-1)
			for x := 0; x < xl; x++ {
				sx := b.origin[2] + min(x, b.size[2]-1)
				vals[(z*yl+y)*xl+x] = at(sz, sy, sx)
			}
		}
	}
}

// scatter writes the valid region of a decoded block back into f.
func scatter(f *grid.Field, b blockShape, vals []float64) {
	rank := f.Rank()
	var ny, nx int
	switch rank {
	case 1:
		ny, nx = 1, f.Dims[0]
	case 2:
		ny, nx = f.Dims[0], f.Dims[1]
	default:
		ny, nx = f.Dims[1], f.Dims[2]
	}
	// Full-block fast path mirroring gather's: contiguous 4-sample rows,
	// moved as array assignments to skip the memmove call overhead.
	if b.size == [3]int{1, 4, 4} && rank == 2 {
		base := b.origin[1]*nx + b.origin[2]
		for y := 0; y < 4; y++ {
			*(*[4]float64)(f.Data[base+y*nx : base+y*nx+4]) = *(*[4]float64)(vals[4*y : 4*y+4])
		}
		return
	}
	if b.size == [3]int{4, 4, 4} && rank == 3 {
		base := (b.origin[0]*ny+b.origin[1])*nx + b.origin[2]
		for z := 0; z < 4; z++ {
			row := base + z*ny*nx
			for y := 0; y < 4; y++ {
				*(*[4]float64)(f.Data[row+y*nx : row+y*nx+4]) = *(*[4]float64)(vals[16*z+4*y : 16*z+4*y+4])
			}
		}
		return
	}
	yl, xl := 4, 4
	if rank < 2 {
		yl = 1
	}
	for z := 0; z < b.size[0]; z++ {
		for y := 0; y < b.size[1]; y++ {
			for x := 0; x < b.size[2]; x++ {
				f.Data[((b.origin[0]+z)*ny+(b.origin[1]+y))*nx+(b.origin[2]+x)] = vals[(z*yl+y)*xl+x]
			}
		}
	}
}

// blockScratch is the per-worker reusable buffer set of the block kernels,
// arena-backed so steady-state compression allocates nothing per block.
type blockScratch struct {
	vals []float64
	blk  []int64
	nb   []uint64
}

func newBlockScratch(size int) *blockScratch {
	return &blockScratch{
		vals: parallel.Floats(size),
		blk:  parallel.Int64s(size),
		nb:   parallel.Uint64s(size),
	}
}

func (s *blockScratch) release() {
	parallel.PutFloats(s.vals)
	parallel.PutInt64s(s.blk)
	parallel.PutUint64s(s.nb)
}

// Compress implements compress.Codec.
func (c *Codec) Compress(f *grid.Field) ([]byte, error) {
	return c.CompressCtx(context.Background(), f)
}

// CompressCtx implements compress.CtxCodec: identical stream to Compress,
// with the codec's spans parented onto the span carried by ctx.
func (c *Codec) CompressCtx(ctx context.Context, f *grid.Field) ([]byte, error) {
	ctx, sp := trace.Start(ctx, "zfp.compress")
	defer sp.End()
	if c.mode == modeRate {
		out, err := c.compressRate(ctx, f)
		if err != nil {
			sp.SetError(err)
			return nil, err
		}
		sp.SetBytes(int64(8*f.Len()), int64(len(out)))
		return out, nil
	}
	var w bitstream.Writer
	if err := c.encodeShards(ctx, f, blocks(f.Dims), &w); err != nil {
		sp.SetError(err)
		return nil, err
	}
	body := w.Bytes()
	hdr := compress.EncodeDimsHeader(f.Dims)
	out := make([]byte, 0, len(hdr)+len(body)+16)
	out = append(out, hdr...)
	out = append(out, c.mode)
	if c.mode == modeAccuracy {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(c.tolerance))
	} else {
		out = append(out, byte(c.precision))
	}
	out = append(out, body...)
	sp.SetBytes(int64(8*f.Len()), int64(len(out)))
	return out, nil
}

// encodeShards fans the block list out over the worker pool. Every shard
// encodes into a private bitstream; the shards are then concatenated at
// bit granularity in shard order, which reproduces the serial stream
// exactly — block i's bits always land at the same offset. A
// zfp.shard_encode span is opened per shard on both paths, so traces show
// the shard structure even when the pool budget forces serial execution.
func (c *Codec) encodeShards(ctx context.Context, f *grid.Field, bs []blockShape, w *bitstream.Writer) error {
	workers := c.workerCount(8 * int64(f.Len()))
	if workers <= 1 || len(bs) < minParallelBlocks {
		_, sp := trace.Start(ctx, "zfp.shard_encode")
		sp.AddItems(int64(len(bs)))
		err := c.encodeBlocks(f, bs, w)
		sp.SetError(err)
		sp.End()
		return err
	}
	shards := parallel.Shards(workers, len(bs))
	ws := make([]bitstream.Writer, shards)
	errs := make([]error, shards)
	parallel.ForShardCtx(ctx, workers, len(bs), func(ctx context.Context, s, lo, hi int) {
		_, sp := trace.Start(ctx, "zfp.shard_encode")
		sp.AddItems(int64(hi - lo))
		errs[s] = c.encodeBlocks(f, bs[lo:hi], &ws[s])
		sp.SetError(errs[s])
		sp.End()
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i := range ws {
		w.AppendWriter(&ws[i])
	}
	return nil
}

// encodeBlocks runs the serial three-step kernel over a slice of blocks.
func (c *Codec) encodeBlocks(f *grid.Field, bs []blockShape, w *bitstream.Writer) error {
	rank := f.Rank()
	size := 1 << (2 * uint(rank)) // 4, 16, or 64
	// Pre-size the bit buffer near the typical smooth-field stream size
	// (a few bits per value; the group coder terminates sparse planes
	// early). This only reserves capacity — a block that codes more still
	// grows the buffer normally — but it collapses most of the append-
	// doubling sequence into one allocation without over-reserving.
	w.Grow(len(bs) * size * 6)
	s := newBlockScratch(size)
	defer s.release()
	vals, blk, nb := s.vals, s.blk, s.nb
	perm := permFor(rank)

	rec := obs.Enabled()
	var alignNs, transformNs, planeNs, nBlocks, nEmpty int64
	var t0 time.Time

	for _, b := range bs {
		if invariant.Enabled {
			// Block-grid invariant: every (possibly partial) block keeps
			// between 1 and 4 valid samples per dimension.
			for d := 0; d < 3; d++ {
				invariant.InRange(b.size[d], 1, 5, "zfp: block extent")
				invariant.Assert(b.origin[d] >= 0, "zfp: negative block origin %d", b.origin[d])
			}
		}
		if rec {
			nBlocks++
			t0 = time.Now()
		}
		gather(f, b, vals)

		// Step 1: common-exponent alignment. The NaN/Inf guard and the
		// max-magnitude scan fuse into one branch-free pass over the raw
		// bits: for finite values, magnitude order equals unsigned order of
		// the sign-cleared IEEE-754 bits, and every NaN/Inf pattern compares
		// above all of them.
		maxBits := uint64(0)
		for _, v := range vals {
			if u := math.Float64bits(v) &^ (1 << 63); u > maxBits {
				maxBits = u
			}
		}
		if maxBits >= 0x7ff0000000000000 {
			return errors.New("zfp: NaN/Inf not supported")
		}
		maxAbs := math.Float64frombits(maxBits)
		if maxAbs == 0 {
			w.WriteBit(0) // empty block
			if rec {
				nEmpty++
				alignNs += time.Since(t0).Nanoseconds()
			}
			continue
		}
		_, emax := math.Frexp(maxAbs) // maxAbs = f * 2^emax, f in [0.5, 1)
		if invariant.Enabled {
			// Align boundary: the biased exponent must fit its 15-bit
			// header field or the stream silently wraps.
			invariant.InRange(emax+16384, 0, 1<<15, "zfp: biased block exponent")
		}
		// Non-empty marker and the 15-bit biased exponent in one write —
		// the same 16 bits the separate WriteBit(1)+WriteBits pair emitted.
		w.WriteBits(1<<15|uint64(emax+16384), 16)

		scale := math.Ldexp(1, fixedPointBits-emax)
		for i, v := range vals {
			blk[i] = int64(v * scale)
		}
		if rec {
			now := time.Now()
			alignNs += now.Sub(t0).Nanoseconds()
			t0 = now
		}

		// Step 2: decorrelating transform, then reorder coefficients by
		// total sequency so significant bits cluster at low indices.
		transformForward(blk, rank)
		for i := range blk {
			// perm is a permutation of [0,64): &63 is a no-op on the value
			// that stands in for the unprovable bounds check.
			nb[i] = int2nb(blk[perm[i]&63])
		}
		if rec {
			now := time.Now()
			transformNs += now.Sub(t0).Nanoseconds()
			t0 = now
		}

		// Step 3: embedded bit-plane coding down to the mode's floor plane.
		kmin := kminFor(c.mode, c.precision, c.tolerance, emax)
		if invariant.Enabled {
			invariant.InRange(kmin, intprec-MaxPrecision, intprec+1, "zfp: floor plane")
			if c.mode == modeAccuracy {
				// Transform→bitplane boundary: rebuilding the block exactly
				// as the decoder will (planes ≥ kmin only) must honour the
				// configured absolute tolerance.
				assertAccuracyBound(nb, vals, rank, emax, kmin, c.tolerance)
			}
		}
		encodePlanes(w, nb, size, kmin)
		if rec {
			planeNs += time.Since(t0).Nanoseconds()
			obsPlanesHist.Observe(int64(intprec - kmin))
		}
	}
	if rec {
		obs.StageAdd("zfp.align", alignNs, nBlocks)
		obs.StageAdd("zfp.transform", transformNs, nBlocks-nEmpty)
		obs.StageAdd("zfp.plane_code", planeNs, nBlocks-nEmpty)
		obsBlocks.Add(nBlocks)
		obsEmptyBlocks.Add(nEmpty)
	}
	return nil
}

// encodePlanes codes planes intprec-1 down to kmin of the negabinary
// coefficients. Full 64-coefficient blocks take the transpose fast path;
// smaller blocks extract each plane with the scalar loop.
//
// nb is CONSUMED: the full-block path transposes it in place, so its
// contents are unspecified after the call. Callers treat it as per-block
// scratch that is fully rewritten before reuse.
func encodePlanes(w *bitstream.Writer, nb []uint64, size, kmin int) {
	n := 0
	if size == 64 {
		// Straight copy: the anti-transpose of unreversed words yields each
		// plane BIT-REVERSED — planes[63-k] bit 63-i == nb[i] bit k. That
		// orientation is the cheap one for the coder: the verbatim prefix
		// (low n coefficient bits, LSB first) is exactly the word's top n
		// bits, and the set-bit scan becomes LeadingZeros64 — no per-plane
		// bits.Reverse64 anywhere (x86 has no bit-reverse instruction).
		// Only planes kmin and above are ever read (words [0, intprec-kmin)),
		// so the butterfly is cut to that output prefix. The transpose runs
		// destructively in nb's own backing array — nb is per-block scratch
		// that the caller fully rewrites before the next use, and skipping
		// the 512-byte staging copy removes a memmove per block.
		planes := (*[64]uint64)(nb)
		transposeTop(planes, intprec-kmin)
		// All planes run through one persistent accumulator: prefixes,
		// group tests, runs, and terminators append to acc and spill only
		// at 64-bit boundaries. The Writer sees the exact bit sequence the
		// per-plane encodePlane calls would produce — only call and flush
		// granularity changes, so the stream is identical while the per-
		// plane function call and flush overhead (3 WriteBits per plane)
		// disappears. Shift counts of 64 are safe throughout: Go defines
		// over-wide shifts as zero, and every such site has acc == 0 after
		// the preceding flush.
		var acc uint64
		var cnt uint
		k := intprec - 1
		// Leading all-zero planes (no value significant yet) each emit a
		// single failed group test; batch those zero bits in one step.
		for k >= kmin && planes[63-k] == 0 {
			k--
		}
		if z := uint(intprec - 1 - k); z > 0 {
			// z <= MaxPrecision zero bits fit the empty accumulator.
			acc <<= z
			cnt += z
		}
		for ; k >= kmin; k-- {
			y := planes[63-k] // bit 63-i = plane bit of value i
			if n > 0 {
				// Verbatim prefix: the top n bits of y.
				pn := uint(n)
				if cnt+pn > 64 {
					w.WriteBits(acc, cnt)
					acc, cnt = 0, 0
				}
				acc = acc<<pn | y>>(64-pn)
				cnt += pn
				y <<= pn
			}
			for n < size {
				if y == 0 {
					// Group test fails: a single 0 ends the plane.
					if cnt == 64 {
						w.WriteBits(acc, 64)
						acc, cnt = 0, 0
					}
					acc <<= 1
					cnt++
					break
				}
				lz := bits.LeadingZeros64(y)
				var v uint64
				var g uint
				if lz >= size-1-n {
					// Set bit at the final position: terminator implicit.
					g = uint(size - n)
					v = 1 << (g - 1)
					n = size
				} else {
					// Test bit, lz zeros, terminating 1 — one batch.
					g = uint(lz) + 2
					v = 1<<(g-1) | 1
					y <<= uint(lz + 1)
					n += lz + 1
				}
				if cnt+g > 64 {
					w.WriteBits(acc, cnt)
					acc, cnt = 0, 0
				}
				acc = acc<<g | v
				cnt += g
			}
		}
		if cnt > 0 {
			w.WriteBits(acc, cnt)
		}
		return
	}
	for k := intprec - 1; k >= kmin; k-- {
		var plane uint64
		for i := 0; i < size; i++ {
			plane |= (nb[i] >> uint(k) & 1) << uint(i)
		}
		n = encodePlane(w, plane, size, n)
	}
}

// decodePlanes reverses encodePlanes into nb (fully overwritten).
func decodePlanes(r *bitstream.Reader, nb []uint64, size, kmin int) error {
	n := 0
	if size == 64 {
		// Inverse of the encode fast path: store plane k at word 63-k
		// (planes below kmin stay zero), anti-transpose, read coefficient
		// i from word 63-i.
		var planes [64]uint64
		for k := intprec - 1; k >= kmin; k-- {
			plane, n2, err := decodePlane(r, size, n)
			if err != nil {
				return err
			}
			planes[63-k] = plane
			n = n2
		}
		transpose64(&planes)
		for i := 0; i < 64; i++ {
			nb[i] = planes[63-i]
		}
		return nil
	}
	for i := range nb {
		nb[i] = 0
	}
	for k := intprec - 1; k >= kmin; k-- {
		plane, n2, err := decodePlane(r, size, n)
		if err != nil {
			return err
		}
		n = n2
		for i := 0; i < size; i++ {
			nb[i] |= (plane >> uint(i) & 1) << uint(k)
		}
	}
	return nil
}

// assertAccuracyBound reconstructs one block exactly as the decoder will —
// negabinary planes at or above kmin, inverse permutation, inverse
// transform, rescale — and asserts every sample lands within tol of the
// gathered originals. Only compiled in with -tags invariants.
func assertAccuracyBound(nb []uint64, vals []float64, rank, emax, kmin int, tol float64) {
	size := len(nb)
	blk := make([]int64, size)
	perm := permFor(rank)
	mask := ^uint64(0) << uint(kmin) // kmin == 64 shifts to an all-drop mask
	for i, u := range nb {
		blk[perm[i]] = nb2int(u & mask)
	}
	transformInverse(blk, rank)
	scale := math.Ldexp(1, emax-fixedPointBits)
	recon := make([]float64, size)
	for i, q := range blk {
		recon[i] = float64(q) * scale
	}
	invariant.ErrorBound(vals, recon, tol, "zfp: accuracy bitplane truncation")
}

// reconstructBlock turns parsed negabinary coefficients back into samples
// of f: inverse permutation, inverse transform, rescale, scatter.
func reconstructBlock(f *grid.Field, b blockShape, nb []uint64, emax, rank int, s *blockScratch) {
	perm := permFor(rank)
	for i, u := range nb {
		s.blk[perm[i]] = nb2int(u)
	}
	transformInverse(s.blk, rank)
	scale := math.Ldexp(1, emax-fixedPointBits)
	for i, q := range s.blk {
		s.vals[i] = float64(q) * scale
	}
	scatter(f, b, s.vals)
}

// emptyEmax marks an all-zero block in the parsed-block buffers of the
// parallel decode path; it cannot collide with a real biased exponent.
const emptyEmax = math.MinInt32

// Decompress implements compress.Codec. Failures wrap the
// compress.ErrTruncated / compress.ErrCorrupt taxonomy.
func (c *Codec) Decompress(data []byte) (*grid.Field, error) {
	return c.DecompressCtx(context.Background(), data)
}

// DecompressCtx implements compress.CtxCodec.
func (c *Codec) DecompressCtx(ctx context.Context, data []byte) (*grid.Field, error) {
	ctx, sp := trace.Start(ctx, "zfp.decompress")
	defer sp.End()
	f, err := c.decompress(ctx, data)
	if err != nil {
		err = compress.Classify(err)
		sp.SetError(err)
		return nil, err
	}
	sp.SetBytes(int64(len(data)), int64(8*f.Len()))
	return f, nil
}

func (c *Codec) decompress(ctx context.Context, data []byte) (*grid.Field, error) {
	dims, rest, err := compress.DecodeDimsHeader(data)
	if err != nil {
		return nil, err
	}
	if len(rest) < 2 {
		return nil, fmt.Errorf("zfp: truncated stream: %w", compress.ErrTruncated)
	}
	mode := rest[0]
	var precision uint
	var tolerance float64
	switch mode {
	case modePrecision:
		precision = uint(rest[1])
		if precision < 1 || precision > MaxPrecision {
			return nil, fmt.Errorf("zfp: invalid precision %d in stream: %w", precision, compress.ErrHeader)
		}
		rest = rest[2:]
	case modeAccuracy:
		if len(rest) < 9 {
			return nil, fmt.Errorf("zfp: truncated tolerance: %w", compress.ErrTruncated)
		}
		tolerance = math.Float64frombits(binary.LittleEndian.Uint64(rest[1:9]))
		if tolerance <= 0 || math.IsNaN(tolerance) || math.IsInf(tolerance, 0) {
			return nil, fmt.Errorf("zfp: invalid tolerance %v in stream: %w", tolerance, compress.ErrHeader)
		}
		rest = rest[9:]
	case modeRate:
		n := int64(1)
		for _, d := range dims {
			n *= int64(d)
		}
		return decompressRate(ctx, dims, rest[1:], c.workerCount(8*n))
	default:
		return nil, fmt.Errorf("zfp: unknown mode %d in stream: %w", mode, compress.ErrHeader)
	}
	r := bitstream.NewReader(rest)

	// Every block costs at least one bit, so the claimed dims cannot imply
	// more blocks than the payload has bits.
	if nb := blockCount(dims); nb > 8*len(rest) {
		return nil, fmt.Errorf("zfp: %d blocks exceed payload capacity: %w", nb, compress.ErrCorrupt)
	}
	f, err := compress.NewCheckedField("zfp: field", dims)
	if err != nil {
		return nil, err
	}
	rank := f.Rank()
	size := 1 << (2 * uint(rank))
	bs := blocks(dims)
	workers := c.workerCount(8 * int64(f.Len()))
	if workers > 1 && len(bs) >= minParallelBlocks {
		// The parallel path buffers every parsed block's coefficients at
		// once; degenerate shapes (many mostly-padding blocks) can make that
		// buffer exceed the decode cap even when the field itself fits, so
		// fall back to the serial per-block scratch rather than failing.
		nbElems := uint64(len(bs)) * uint64(size)
		if compress.CheckedAlloc("zfp: parsed blocks", nbElems, nbElems, 8) == nil {
			return c.decompressParallel(ctx, f, bs, r, mode, precision, tolerance, rank, size, workers)
		}
	}
	if err := c.decodeSerial(ctx, f, bs, r, mode, precision, tolerance, rank, size); err != nil {
		return nil, err
	}
	return f, nil
}

// decodeSerial runs the interleaved parse + reconstruct loop on the calling
// goroutine under a single zfp.shard_decode span, mirroring the shard spans
// of the parallel path so chunked traces expose the decode structure at any
// worker budget.
func (c *Codec) decodeSerial(ctx context.Context, f *grid.Field, bs []blockShape, r *bitstream.Reader, mode byte, precision uint, tolerance float64, rank, size int) (err error) {
	_, sp := trace.Start(ctx, "zfp.shard_decode")
	defer sp.End()
	defer func() { sp.SetError(err) }()
	sp.AddItems(int64(len(bs)))

	s := newBlockScratch(size)
	defer s.release()
	rec := obs.Enabled()
	var planeNs, invNs, nBlocks int64
	var t0 time.Time
	for _, b := range bs {
		if invariant.Enabled {
			for d := 0; d < 3; d++ {
				invariant.InRange(b.size[d], 1, 5, "zfp: decode block extent")
			}
		}
		nonEmpty, rerr := r.ReadBit()
		if rerr != nil {
			return fmt.Errorf("zfp: truncated stream: %w", rerr)
		}
		if nonEmpty == 0 {
			for i := range s.vals {
				s.vals[i] = 0
			}
			scatter(f, b, s.vals)
			continue
		}
		e, rerr := r.ReadBits(15)
		if rerr != nil {
			return fmt.Errorf("zfp: truncated exponent: %w", rerr)
		}
		emax := int(e) - 16384
		if rec {
			nBlocks++
			t0 = time.Now()
		}
		if derr := decodePlanes(r, s.nb, size, kminFor(mode, precision, tolerance, emax)); derr != nil {
			return fmt.Errorf("zfp: truncated plane: %w", derr)
		}
		if rec {
			now := time.Now()
			planeNs += now.Sub(t0).Nanoseconds()
			t0 = now
		}
		reconstructBlock(f, b, s.nb, emax, rank, s)
		if rec {
			invNs += time.Since(t0).Nanoseconds()
		}
	}
	if rec {
		obs.StageAdd("zfp.plane_decode", planeNs, nBlocks)
		obs.StageAdd("zfp.inv_transform", invNs, nBlocks)
	}
	return nil
}

// decompressParallel splits decoding in two stages: the bit-serial stream
// parse (block boundaries are only discovered by decoding, so this stage
// cannot fan out) collects every block's exponent and negabinary
// coefficients, then the pool runs the independent inverse transforms and
// scatters. Scatter regions are disjoint by construction, so workers never
// write the same sample.
func (c *Codec) decompressParallel(ctx context.Context, f *grid.Field, bs []blockShape, r *bitstream.Reader, mode byte, precision uint, tolerance float64, rank, size, workers int) (*grid.Field, error) {
	nbAll := parallel.Uint64s(len(bs) * size)
	defer parallel.PutUint64s(nbAll)
	emaxs := parallel.Ints(len(bs))
	defer parallel.PutInts(emaxs)

	rec := obs.Enabled()
	var planeNs, nBlocks int64
	var t0 time.Time
	for bi, b := range bs {
		if invariant.Enabled {
			for d := 0; d < 3; d++ {
				invariant.InRange(b.size[d], 1, 5, "zfp: decode block extent")
			}
		}
		nonEmpty, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("zfp: truncated stream: %w", err)
		}
		if nonEmpty == 0 {
			emaxs[bi] = emptyEmax
			continue
		}
		e, err := r.ReadBits(15)
		if err != nil {
			return nil, fmt.Errorf("zfp: truncated exponent: %w", err)
		}
		emax := int(e) - 16384
		emaxs[bi] = emax
		if rec {
			nBlocks++
			t0 = time.Now()
		}
		if err := decodePlanes(r, nbAll[bi*size:(bi+1)*size], size, kminFor(mode, precision, tolerance, emax)); err != nil {
			return nil, fmt.Errorf("zfp: truncated plane: %w", err)
		}
		if rec {
			planeNs += time.Since(t0).Nanoseconds()
		}
	}
	if rec {
		obs.StageAdd("zfp.plane_decode", planeNs, nBlocks)
	}

	parallel.ForShardCtx(ctx, workers, len(bs), func(ctx context.Context, _, lo, hi int) {
		_, sp := trace.Start(ctx, "zfp.shard_decode")
		defer sp.End()
		sp.AddItems(int64(hi - lo))
		s := newBlockScratch(size)
		defer s.release()
		var invNs, n int64
		var st time.Time
		for bi := lo; bi < hi; bi++ {
			if emaxs[bi] == emptyEmax {
				for i := range s.vals {
					s.vals[i] = 0
				}
				scatter(f, bs[bi], s.vals)
				continue
			}
			if rec {
				n++
				st = time.Now()
			}
			reconstructBlock(f, bs[bi], nbAll[bi*size:(bi+1)*size], emaxs[bi], rank, s)
			if rec {
				invNs += time.Since(st).Nanoseconds()
			}
		}
		if rec {
			obs.StageAdd("zfp.inv_transform", invNs, n)
		}
	})
	return f, nil
}

// The codec is fully context-aware: plain Compress/Decompress delegate to
// the Ctx variants with a background context.
var _ compress.CtxCodec = (*Codec)(nil)

func init() {
	compress.RegisterWorkersDecoder("zfp", func(b []byte, workers int) (*grid.Field, error) {
		return MustNew(16).WithWorkers(workers).Decompress(b)
	})
	compress.RegisterCtxDecoder("zfp", func(ctx context.Context, b []byte, workers int) (*grid.Field, error) {
		return compress.DecompressCtx(ctx, MustNew(16).WithWorkers(workers), b)
	})
}

package zfp

import (
	"math"
	"testing"

	"lrm/internal/grid"
)

// FuzzDecompress asserts the zfp stream parser never panics: arbitrary
// input either decodes or errors — on the serial path AND on the worker
// pool path, which must agree bitwise whenever both succeed.
func FuzzDecompress(f *testing.F) {
	field := grid.New(6, 6)
	for i := range field.Data {
		field.Data[i] = float64(i) / 7
	}
	for _, c := range []*Codec{MustNew(8), MustNewAccuracy(1e-3), MustNewRate(8)} {
		enc, err := c.Compress(field)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c := MustNew(16)
		out, err := c.Decompress(data)
		if err == nil && out != nil {
			if out.Len() == 0 || out.Len() > 1<<24 {
				t.Fatalf("implausible decode length %d", out.Len())
			}
		}
		outP, errP := c.WithWorkers(8).Decompress(data)
		if (err == nil) != (errP == nil) {
			t.Fatalf("serial/parallel decode disagree: %v vs %v", err, errP)
		}
		if err == nil {
			for i := range out.Data {
				if math.Float64bits(out.Data[i]) != math.Float64bits(outP.Data[i]) {
					t.Fatalf("serial/parallel decode differ bitwise at %d", i)
				}
			}
		}
		_, _ = c.DecodeAt(data, 0, 0)
		_, _ = c.DecodeAt(data, 1)
	})
}

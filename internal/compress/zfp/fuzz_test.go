package zfp

import (
	"math"
	"testing"

	"lrm/internal/bitstream"
	"lrm/internal/grid"
)

// FuzzDecompress asserts the zfp stream parser never panics: arbitrary
// input either decodes or errors — on the serial path AND on the worker
// pool path, which must agree bitwise whenever both succeed.
func FuzzDecompress(f *testing.F) {
	field := grid.New(6, 6)
	for i := range field.Data {
		field.Data[i] = float64(i) / 7
	}
	for _, c := range []*Codec{MustNew(8), MustNewAccuracy(1e-3), MustNewRate(8)} {
		enc, err := c.Compress(field)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c := MustNew(16)
		out, err := c.Decompress(data)
		if err == nil && out != nil {
			if out.Len() == 0 || out.Len() > 1<<24 {
				t.Fatalf("implausible decode length %d", out.Len())
			}
		}
		outP, errP := c.WithWorkers(8).Decompress(data)
		if (err == nil) != (errP == nil) {
			t.Fatalf("serial/parallel decode disagree: %v vs %v", err, errP)
		}
		if err == nil {
			for i := range out.Data {
				if math.Float64bits(out.Data[i]) != math.Float64bits(outP.Data[i]) {
					t.Fatalf("serial/parallel decode differ bitwise at %d", i)
				}
			}
		}
		_, _ = c.DecodeAt(data, 0, 0)
		_, _ = c.DecodeAt(data, 1)

		// Differential check of the plane decoders over the same arbitrary
		// (valid, truncated, or corrupt) bytes: the batch window decoder and
		// the per-bit reference must agree on every value, significance
		// count, and error outcome. The checked-in seeds include truncated
		// streams, so plain `go test` covers the fault-injection corpus.
		rFast := bitstream.NewReader(data)
		rSlow := bitstream.NewReader(data)
		nf, ns := 0, 0
		for p := 0; p < 24 && nf < 64; p++ {
			xf, nf2, errF := decodePlane(rFast, 64, nf)
			xs, ns2, errS := decodePlaneScalar(rSlow, 64, ns)
			if (errF == nil) != (errS == nil) {
				t.Fatalf("plane %d: decoder error mismatch: %v vs %v", p, errF, errS)
			}
			if errF != nil {
				break
			}
			if xf != xs || nf2 != ns2 {
				t.Fatalf("plane %d: (%#x,%d) != reference (%#x,%d)", p, xf, nf2, xs, ns2)
			}
			nf, ns = nf2, ns2
		}
	})
}

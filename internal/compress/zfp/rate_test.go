package zfp

import (
	"math"
	"math/rand"
	"testing"

	"lrm/internal/grid"
)

func TestNewRateValidation(t *testing.T) {
	for _, r := range []int{0, -1, 63, 100} {
		if _, err := NewRate(r); err == nil {
			t.Fatalf("expected rejection for rate %d", r)
		}
	}
	c := MustNewRate(8)
	if c.Rate() != 8 || c.Name() != "zfp(r=8)" || c.Lossless() {
		t.Fatalf("codec = %+v name=%q", c, c.Name())
	}
}

func TestRateExactStreamSize(t *testing.T) {
	// The defining property: stream size depends only on dims and rate.
	for _, rate := range []int{2, 8, 16, 32} {
		c := MustNewRate(rate)
		smooth, err := c.Compress(smooth3D(16))
		if err != nil {
			t.Fatal(err)
		}
		noise, err := c.Compress(noisy3D(16, 4))
		if err != nil {
			t.Fatal(err)
		}
		if len(smooth) != len(noise) {
			t.Fatalf("rate %d: smooth %dB != noise %dB (must be content independent)",
				rate, len(smooth), len(noise))
		}
		// 64 blocks x rate*64 bits + header.
		wantPayload := (64*rate*64 + 7) / 8
		hdr := len(smooth) - wantPayload
		if hdr < 4 || hdr > 8 {
			t.Fatalf("rate %d: stream %dB, payload should be %dB", rate, len(smooth), wantPayload)
		}
	}
}

func TestRateRoundTripQuality(t *testing.T) {
	f := smooth3D(16)
	var prevRMSE = math.Inf(1)
	for _, rate := range []int{4, 8, 16, 32} {
		c := MustNewRate(rate)
		enc, err := c.Compress(f)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatal(err)
		}
		rmse := 0.0
		for i := range f.Data {
			d := f.Data[i] - dec.Data[i]
			rmse += d * d
		}
		rmse = math.Sqrt(rmse / float64(f.Len()))
		if rmse > prevRMSE*1.01 {
			t.Fatalf("rate %d: RMSE %v did not improve on %v", rate, rmse, prevRMSE)
		}
		prevRMSE = rmse
	}
	// At 32 bits/value the reconstruction must be tight.
	if prevRMSE > 1e-6 {
		t.Fatalf("rate-32 RMSE %v too high", prevRMSE)
	}
}

func TestRateAllRanksAndPartialBlocks(t *testing.T) {
	c := MustNewRate(16)
	for _, dims := range [][]int{{7}, {33}, {6, 9}, {17, 5}, {5, 6, 7}} {
		f := grid.New(dims...)
		for i := range f.Data {
			f.Data[i] = math.Sin(float64(i) / 5)
		}
		enc, err := c.Compress(f)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		for i := range f.Data {
			if math.Abs(f.Data[i]-dec.Data[i]) > 1e-2 {
				t.Fatalf("%v: error at %d: %v vs %v", dims, i, f.Data[i], dec.Data[i])
			}
		}
	}
}

func TestRateZeroBlocks(t *testing.T) {
	f := grid.New(8, 8, 8)
	c := MustNewRate(8)
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec.Data {
		if v != 0 {
			t.Fatalf("zero field decoded nonzero at %d: %v", i, v)
		}
	}
}

func TestDecodeAtMatchesFullDecode(t *testing.T) {
	f := smooth3D(16)
	c := MustNewRate(16)
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		k, j, i := rng.Intn(16), rng.Intn(16), rng.Intn(16)
		got, err := c.DecodeAt(enc, k, j, i)
		if err != nil {
			t.Fatal(err)
		}
		want := full.At3(k, j, i)
		if got != want {
			t.Fatalf("DecodeAt(%d,%d,%d) = %v, full decode = %v", k, j, i, got, want)
		}
	}
}

func TestDecodeAtLowerRanks(t *testing.T) {
	c := MustNewRate(24)
	f1 := grid.New(37)
	for i := range f1.Data {
		f1.Data[i] = float64(i) * 1.5
	}
	enc, err := c.Compress(f1)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := c.Decompress(enc)
	for i := 0; i < 37; i += 5 {
		got, err := c.DecodeAt(enc, i)
		if err != nil {
			t.Fatal(err)
		}
		if got != full.Data[i] {
			t.Fatalf("1-D DecodeAt(%d) = %v, want %v", i, got, full.Data[i])
		}
	}

	f2 := grid.New(9, 13)
	for i := range f2.Data {
		f2.Data[i] = math.Cos(float64(i) / 7)
	}
	enc2, err := c.Compress(f2)
	if err != nil {
		t.Fatal(err)
	}
	full2, _ := c.Decompress(enc2)
	for j := 0; j < 9; j += 2 {
		for i := 0; i < 13; i += 3 {
			got, err := c.DecodeAt(enc2, j, i)
			if err != nil {
				t.Fatal(err)
			}
			if got != full2.At2(j, i) {
				t.Fatalf("2-D DecodeAt(%d,%d) mismatch", j, i)
			}
		}
	}
}

func TestDecodeAtValidation(t *testing.T) {
	c := MustNewRate(8)
	f := smooth3D(8)
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeAt(enc, 1, 2); err == nil {
		t.Fatal("expected rank-mismatch rejection")
	}
	if _, err := c.DecodeAt(enc, 1, 2, 99); err == nil {
		t.Fatal("expected out-of-range rejection")
	}
	// Non-rate stream.
	pEnc, err := MustNew(16).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeAt(pEnc, 1, 2, 3); err == nil {
		t.Fatal("expected non-rate-stream rejection")
	}
	// Truncated stream.
	if _, err := c.DecodeAt(enc[:len(enc)/2], 7, 7, 7); err == nil {
		t.Fatal("expected truncation rejection")
	}
}

func TestRateCrossModeDecodeDispatch(t *testing.T) {
	// Any codec instance must decode a rate stream (self-describing).
	f := smooth3D(8)
	enc, err := MustNewRate(16).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := MustNew(8).Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-dec.Data[i]) > 1e-2 {
			t.Fatal("cross-mode rate decode broken")
		}
	}
}

//go:build invariants

package zfp

import "testing"

// TestAccuracyInvariantTrips proves the tolerance assertion is live under
// the invariants tag: an impossible tolerance over a truncated bit plane
// must panic rather than pass silently.
func TestAccuracyInvariantTrips(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected the accuracy invariant to panic")
		}
	}()
	// All bit planes discarded (nb == 0) but the block holds nonzero
	// values: no tolerance below 1 can hold.
	nb := make([]uint64, 4)
	vals := []float64{1, 1, 1, 1}
	assertAccuracyBound(nb, vals, 1, 0, 4, 1e-6)
}

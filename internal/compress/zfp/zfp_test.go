package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lrm/internal/bitstream"
	"lrm/internal/compress"
	"lrm/internal/grid"
)

func smooth3D(n int) *grid.Field {
	f := grid.New(n, n, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				f.Set3(math.Sin(float64(k)/7)+math.Cos(float64(j)/5)*math.Sin(float64(i)/9), k, j, i)
			}
		}
	}
	return f
}

func noisy3D(n int, seed int64) *grid.Field {
	rng := rand.New(rand.NewSource(seed))
	f := grid.New(n, n, n)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("expected error for precision 0")
	}
	if _, err := New(61); err == nil {
		t.Fatal("expected error for precision > max")
	}
	c, err := New(16)
	if err != nil || c.Precision() != 16 {
		t.Fatalf("New(16) = %v, %v", c, err)
	}
	if c.Lossless() {
		t.Fatal("zfp must report lossy")
	}
	if c.Name() != "zfp(p=16)" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestLiftRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		v := make([]int64, 4)
		orig := make([]int64, 4)
		for i := range v {
			v[i] = int64(rng.Uint64() >> 4) // keep headroom
			if rng.Intn(2) == 0 {
				v[i] = -v[i]
			}
			orig[i] = v[i]
		}
		fwdLift(v, 0, 1)
		invLift(v, 0, 1)
		for i := range v {
			// The >>1 truncations make the pair inexact in the last bits,
			// exactly as in real ZFP; a few ulps of fixed-point error are
			// invisible after the 2^-60 scaling.
			if d := v[i] - orig[i]; d > 4 || d < -4 {
				t.Fatalf("lift round trip [%d]: %d != %d", i, v[i], orig[i])
			}
		}
	}
}

func TestTransformRoundTripAllRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for rank := 1; rank <= 3; rank++ {
		size := 1 << (2 * uint(rank))
		blk := make([]int64, size)
		orig := make([]int64, size)
		for i := range blk {
			blk[i] = int64(rng.Int63n(1<<55)) - 1<<54
			orig[i] = blk[i]
		}
		transformForward(blk, rank)
		transformInverse(blk, rank)
		for i := range blk {
			// Truncation error grows with the number of lifting passes but
			// stays within a few dozen fixed-point ulps even in 3-D.
			if d := blk[i] - orig[i]; d > 64 || d < -64 {
				t.Fatalf("rank %d transform round trip [%d]: %d != %d", rank, i, blk[i], orig[i])
			}
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	check := func(i int64) bool { return nb2int(int2nb(i)) == i }
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64} {
		if nb2int(int2nb(v)) != v {
			t.Fatalf("negabinary round trip failed for %d", v)
		}
	}
}

func TestPlaneCodingRoundTrip(t *testing.T) {
	// Exhaustive for 4-value blocks, random for 64.
	for x := uint64(0); x < 16; x++ {
		for n0 := 0; n0 <= 4; n0++ {
			var w testWriter
			n1 := encodePlane(&w.w, x, 4, n0)
			got, n2, err := decodePlane(w.reader(), 4, n0)
			if err != nil {
				t.Fatal(err)
			}
			if got != x || n1 != n2 {
				t.Fatalf("plane x=%04b n0=%d: got %04b n=%d, want %04b n=%d", x, n0, got, n2, x, n1)
			}
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		x := rng.Uint64()
		n0 := rng.Intn(65)
		var w testWriter
		n1 := encodePlane(&w.w, x, 64, n0)
		got, n2, err := decodePlane(w.reader(), 64, n0)
		if err != nil {
			t.Fatal(err)
		}
		if got != x || n1 != n2 {
			t.Fatalf("plane trial %d mismatch", trial)
		}
	}
}

func TestErrorWithinPrecisionBound(t *testing.T) {
	f := smooth3D(16)
	for _, p := range []int{12, 16, 24, 32} {
		c := MustNew(p)
		enc, err := c.Compress(f)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatal(err)
		}
		maxErr := 0.0
		for i := range f.Data {
			if e := math.Abs(f.Data[i] - dec.Data[i]); e > maxErr {
				maxErr = e
			}
		}
		// Block max magnitudes are O(1); truncating to p planes of a
		// 60-bit fixed-point rep bounds the error near 2^(4-p) plus
		// transform amplification.
		bound := math.Ldexp(1, 8-p)
		if maxErr > bound {
			t.Fatalf("precision %d: max error %v exceeds %v", p, maxErr, bound)
		}
	}
}

func TestHigherPrecisionLowerError(t *testing.T) {
	f := noisy3D(12, 7)
	var prev float64 = math.Inf(1)
	for _, p := range []int{8, 16, 24, 32} {
		c := MustNew(p)
		enc, _ := c.Compress(f)
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatal(err)
		}
		rmse := 0.0
		for i := range f.Data {
			d := f.Data[i] - dec.Data[i]
			rmse += d * d
		}
		rmse = math.Sqrt(rmse / float64(f.Len()))
		if rmse > prev*1.01 {
			t.Fatalf("rmse increased from %v to %v at precision %d", prev, rmse, p)
		}
		prev = rmse
	}
}

func TestSmoothCompressesBetterThanNoise(t *testing.T) {
	c := MustNew(16)
	smoothEnc, err := c.Compress(smooth3D(16))
	if err != nil {
		t.Fatal(err)
	}
	noiseEnc, err := c.Compress(noisy3D(16, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(smoothEnc) >= len(noiseEnc) {
		t.Fatalf("smooth data (%dB) should compress better than noise (%dB)", len(smoothEnc), len(noiseEnc))
	}
	// And smooth data must actually compress vs the 8-byte raw encoding.
	f := smooth3D(16)
	if r := compress.Ratio(f, smoothEnc); r < 3 {
		t.Fatalf("smooth ratio = %.2f, expected > 3", r)
	}
}

func TestZeroFieldIsTiny(t *testing.T) {
	f := grid.New(16, 16, 16)
	c := MustNew(16)
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	// 64 blocks, 1 bit each, plus header.
	if len(enc) > 64 {
		t.Fatalf("zero field encoded to %d bytes", len(enc))
	}
	dec, err := c.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec.Data {
		if v != 0 {
			t.Fatalf("zero field decoded nonzero at %d: %v", i, v)
		}
	}
}

func TestAllRanksAndPartialBlocks(t *testing.T) {
	shapes := [][]int{
		{5}, {16}, {37},
		{5, 7}, {16, 16}, {9, 13},
		{5, 6, 7}, {8, 8, 8}, {3, 3, 3},
	}
	c := MustNew(24)
	rng := rand.New(rand.NewSource(11))
	for _, dims := range shapes {
		f := grid.New(dims...)
		for i := range f.Data {
			f.Data[i] = math.Sin(float64(i)/3) * (1 + 0.01*rng.Float64())
		}
		enc, err := c.Compress(f)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		for i := range f.Data {
			if math.Abs(f.Data[i]-dec.Data[i]) > 1e-4 {
				t.Fatalf("%v: error at %d: %v vs %v", dims, i, f.Data[i], dec.Data[i])
			}
		}
	}
}

func TestWideDynamicRange(t *testing.T) {
	f := grid.New(64)
	for i := range f.Data {
		f.Data[i] = math.Ldexp(1, i-32) // 2^-32 .. 2^31
	}
	c := MustNew(32)
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		// Per-block relative accuracy: error scales with the block max.
		blockMax := math.Ldexp(1, (i/4)*4+3-32)
		if math.Abs(f.Data[i]-dec.Data[i]) > blockMax*1e-6 {
			t.Fatalf("dynamic range error at %d: %v vs %v", i, f.Data[i], dec.Data[i])
		}
	}
}

func TestRejectsNaN(t *testing.T) {
	f := grid.New(4)
	f.Data[2] = math.NaN()
	if _, err := MustNew(16).Compress(f); err == nil {
		t.Fatal("expected NaN rejection")
	}
	f.Data[2] = math.Inf(1)
	if _, err := MustNew(16).Compress(f); err == nil {
		t.Fatal("expected Inf rejection")
	}
}

func TestDecompressGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{3, 4, 4, 4}, // header only, no precision/payload
		{1, 8, 0},    // precision 0
		{1, 8, 99},   // absurd precision
	}
	c := MustNew(16)
	for i, b := range cases {
		if _, err := c.Decompress(b); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Truncated payload.
	f := smooth3D(8)
	enc, _ := c.Compress(f)
	if _, err := c.Decompress(enc[:len(enc)/2]); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestNegativeValues(t *testing.T) {
	f := grid.New(4, 4)
	for i := range f.Data {
		f.Data[i] = -100.5 + float64(i)
	}
	c := MustNew(32)
	enc, _ := c.Compress(f)
	dec, err := c.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-dec.Data[i]) > 1e-4 {
			t.Fatalf("negative value error at %d: %v vs %v", i, f.Data[i], dec.Data[i])
		}
	}
}

// testWriter adapts bitstream for the plane tests.
type testWriter struct{ w bitstream.Writer }

func (tw *testWriter) reader() *bitstream.Reader { return bitstream.NewReader(tw.w.Bytes()) }

func TestSequencyPermutations(t *testing.T) {
	for rank := 1; rank <= 3; rank++ {
		p := permFor(rank)
		size := 1 << (2 * uint(rank))
		if len(p) != size {
			t.Fatalf("rank %d: perm length %d", rank, len(p))
		}
		// Must be a permutation.
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				t.Fatalf("rank %d: invalid permutation %v", rank, p)
			}
			seen[v] = true
		}
		// Sequency must be non-decreasing along the order.
		seq := func(i int) int {
			s := 0
			for d := 0; d < rank; d++ {
				s += (i >> (2 * uint(d))) & 3
			}
			return s
		}
		for i := 1; i < size; i++ {
			if seq(p[i]) < seq(p[i-1]) {
				t.Fatalf("rank %d: sequency decreases at %d", rank, i)
			}
		}
		// DC first, highest frequency last.
		if p[0] != 0 || p[size-1] != size-1 {
			t.Fatalf("rank %d: endpoints %d..%d", rank, p[0], p[size-1])
		}
	}
}

package compress

import (
	"fmt"
	"sync/atomic"

	"lrm/internal/grid"
	"lrm/internal/obs"
)

// obsAllocHighWater tracks the largest single decode-side allocation
// admitted by CheckedAlloc since the last registry reset.
var obsAllocHighWater = obs.GetGauge("compress.checked_alloc_high_water_bytes")

// DefaultDecodeAllocCap is the default per-allocation byte cap on decode
// paths: room for the largest legitimate field (MaxElements float64s) plus
// slack for stream-side buffers.
const DefaultDecodeAllocCap = int64(8*MaxElements) + 1<<16

var decodeAllocCap atomic.Int64

func init() { decodeAllocCap.Store(DefaultDecodeAllocCap) }

// DecodeAllocCap returns the process-wide decode-side allocation cap in
// bytes. Decoders refuse any single header-driven allocation above it.
func DecodeAllocCap() int64 { return decodeAllocCap.Load() }

// SetDecodeAllocCap lowers (or restores) the decode-side allocation cap and
// returns the previous value; n <= 0 restores the default. Tests and
// memory-constrained embedders use this to bound what a hostile archive can
// make any decoder allocate in one call:
//
//	prev := compress.SetDecodeAllocCap(1 << 20)
//	defer compress.SetDecodeAllocCap(prev)
func SetDecodeAllocCap(n int64) (prev int64) {
	prev = decodeAllocCap.Load()
	if n <= 0 {
		n = DefaultDecodeAllocCap
	}
	decodeAllocCap.Store(n)
	return prev
}

// CheckedAlloc guards a decode-side allocation of elems elements of
// elemBytes bytes each, where elems comes from an untrusted header.
// maxElems is the largest element count the remaining input could
// legitimately back — derived by the caller from the bytes or bits left in
// the stream — so a tiny archive cannot claim a huge buffer. Claims beyond
// maxElems, or beyond the process-wide DecodeAllocCap, return a wrapped
// ErrCorrupt before a single byte is allocated.
//
// The decodetaint analyzer (cmd/lrmlint) enforces the discipline: a make
// size or index bound derived from decoded input that flows through
// neither CheckedAlloc/NewCheckedField nor a relational bounds guard is a
// lint failure.
func CheckedAlloc(what string, elems, maxElems uint64, elemBytes int) error {
	if elems > maxElems {
		return fmt.Errorf("%s: claimed %d elements exceed the %d the input can back: %w",
			what, elems, maxElems, ErrCorrupt)
	}
	need := elems * uint64(elemBytes)
	if need > uint64(DecodeAllocCap()) {
		return fmt.Errorf("%s: %d-byte allocation exceeds decode cap %d: %w",
			what, need, DecodeAllocCap(), ErrCorrupt)
	}
	if obs.Enabled() {
		obsAllocHighWater.SetMax(int64(need))
	}
	return nil
}

// NewCheckedField allocates the zero-filled output field for header-claimed
// dims, enforcing the decode allocation cap before touching the allocator.
// Dims usually arrive pre-validated by DecodeDimsHeader; invalid dims are
// reported as a header error rather than a panic.
func NewCheckedField(what string, dims []int) (*grid.Field, error) {
	elems := uint64(1)
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("%s: non-positive extent in %v: %w", what, dims, ErrHeader)
		}
		elems *= uint64(d)
	}
	if err := CheckedAlloc(what, elems, elems, 8); err != nil {
		return nil, err
	}
	f, err := grid.NewChecked(dims...)
	if err != nil {
		return nil, fmt.Errorf("%s: %v: %w", what, err, ErrHeader)
	}
	return f, nil
}

package compress

import (
	"context"
	"fmt"
	"sync"

	"lrm/internal/grid"
)

// CtxCodec is the optional interface of codecs whose kernels accept a
// context for trace propagation: spans the codec opens parent onto the
// span carried by ctx, and pool workers inherit the submitting stage's
// pprof labels. The streams produced are byte-identical to the plain
// Compress/Decompress methods — ctx carries observability, never
// configuration.
//
// The ctxflow analyzer (cmd/lrmlint) keeps the chain intact: a function
// holding a ctx may neither re-root it with context.Background/TODO nor
// call the plain variant of a function whose Ctx variant exists.
type CtxCodec interface {
	Codec
	CompressCtx(ctx context.Context, f *grid.Field) ([]byte, error)
	DecompressCtx(ctx context.Context, b []byte) (*grid.Field, error)
}

// CompressCtx compresses f with c, threading ctx when the codec supports
// it and falling back to the plain method when it does not.
func CompressCtx(ctx context.Context, c Codec, f *grid.Field) ([]byte, error) {
	if cc, ok := c.(CtxCodec); ok {
		return cc.CompressCtx(ctx, f)
	}
	return c.Compress(f)
}

// DecompressCtx decompresses b with c, threading ctx when the codec
// supports it.
func DecompressCtx(ctx context.Context, c Codec, b []byte) (*grid.Field, error) {
	if cc, ok := c.(CtxCodec); ok {
		return cc.DecompressCtx(ctx, b)
	}
	return c.Decompress(b)
}

// CtxDecoder is a registry decoder that accepts a context and a worker
// budget, combining WorkersDecoder's pool knob with trace propagation.
type CtxDecoder func(ctx context.Context, b []byte, workers int) (*grid.Field, error)

var (
	ctxDecodersMu sync.RWMutex
	ctxDecoders   = map[string]CtxDecoder{}
)

// RegisterCtxDecoder installs a context-aware decoder for a codec family,
// alongside (not instead of) the family's plain registration. Registering
// a family twice panics, matching RegisterDecoder.
func RegisterCtxDecoder(family string, d CtxDecoder) {
	ctxDecodersMu.Lock()
	defer ctxDecodersMu.Unlock()
	if _, dup := ctxDecoders[family]; dup {
		panic(fmt.Sprintf("compress: ctx decoder %q registered twice", family))
	}
	ctxDecoders[family] = d
}

// DecoderCtxForWorkers returns a context-aware decode function for the
// family at the given worker budget. Families without a CtxDecoder fall
// back to their worker-aware or plain decoder with ctx ignored — decoding
// still works, the stream just traces as a single opaque stage.
func DecoderCtxForWorkers(family string, workers int) (func(ctx context.Context, b []byte) (*grid.Field, error), error) {
	ctxDecodersMu.RLock()
	cd, ok := ctxDecoders[family]
	ctxDecodersMu.RUnlock()
	if ok {
		return func(ctx context.Context, b []byte) (*grid.Field, error) { return cd(ctx, b, workers) }, nil
	}
	d, err := DecoderForWorkers(family, workers)
	if err != nil {
		return nil, err
	}
	return func(_ context.Context, b []byte) (*grid.Field, error) { return d(b) }, nil
}

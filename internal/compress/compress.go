// Package compress defines the common codec interface shared by the ZFP-,
// SZ-, and FPC-style compressors and provides a flate-based lossless
// baseline plus ratio helpers.
package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"

	"lrm/internal/grid"
	"lrm/internal/parallel"
)

// Codec compresses and decompresses whole fields. A codec's stream is
// self-describing: Decompress needs no side information.
type Codec interface {
	// Name identifies the codec and its configuration, e.g. "zfp(p=16)".
	Name() string
	// Lossless reports whether Decompress(Compress(f)) is bit-exact.
	Lossless() bool
	Compress(f *grid.Field) ([]byte, error)
	Decompress(b []byte) (*grid.Field, error)
}

// ErrorBounded is the optional interface of codecs that guarantee a
// pointwise absolute error bound: for every point, |x − x′| ≤ bound after
// a Compress/Decompress round trip. The bound may depend on the input
// (value-range-relative modes). Lossless codecs return bound 0. Codecs
// whose guarantee is not expressible as a single absolute bound for f
// (pointwise-relative, fixed-precision, fixed-rate) return ok == false.
//
// The invariants build (-tags invariants) uses this interface to assert
// the paper's end-to-end guarantee at pipeline stage boundaries.
type ErrorBounded interface {
	AbsErrorBound(f *grid.Field) (bound float64, ok bool)
}

// Parallelizable is the optional interface of codecs whose kernels run on
// a bounded worker pool. WithWorkers returns a codec bound to the given
// pool size — 1 forces serial execution, 0 restores the default
// (GOMAXPROCS) — without mutating the receiver. Implementations MUST
// produce byte-identical streams at every worker count: the knob trades
// only latency, never format, so callers may resize freely (e.g. the
// chunked container dividing a pool among chunks).
type Parallelizable interface {
	Codec
	WithWorkers(workers int) Codec
}

// ParallelTunable is the optional interface of codecs that accept a full
// parallel.Config — the worker budget plus the size-aware cutover
// threshold (Config.MinShardBytes) — instead of only a pool size. The same
// byte-identity contract as Parallelizable applies: the config trades
// latency, never format.
type ParallelTunable interface {
	Codec
	WithParallel(cfg parallel.Config) Codec
}

// Ratio returns the compression ratio of a field against its encoding
// (original bytes / compressed bytes).
func Ratio(f *grid.Field, compressed []byte) float64 {
	if len(compressed) == 0 {
		return 0
	}
	return float64(8*f.Len()) / float64(len(compressed))
}

// RatioBytes returns origBytes/compressedBytes.
func RatioBytes(orig, compressed int) float64 {
	if compressed == 0 {
		return 0
	}
	return float64(orig) / float64(compressed)
}

// FlateBytes deflates a raw byte slice at the given level (flate levels
// -2..9; use flate.BestCompression for max effort).
func FlateBytes(b []byte, level int) ([]byte, error) {
	if level < -2 || level > 9 {
		_, err := flate.NewWriter(io.Discard, level)
		return nil, err
	}
	// One pooled writer per level: flate.NewWriter builds a fresh ~700 KiB
	// window/hash state per call, which used to dominate the sz allocation
	// profile. Reset makes a pooled writer "equivalent to the result of
	// NewWriter" (its documented contract), so reuse never changes a byte
	// of output.
	pool := &flateWriterPools[level+2]
	var buf bytes.Buffer
	w, _ := pool.Get().(*flate.Writer)
	if w == nil {
		var err error
		w, err = flate.NewWriter(&buf, level)
		if err != nil {
			return nil, err
		}
	} else {
		w.Reset(&buf)
	}
	defer pool.Put(w)
	if _, err := w.Write(b); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// flateWriterPools caches flate writers by compression level (-2..9 maps
// to indices 0..11).
var flateWriterPools [12]sync.Pool

// maxInflate caps decompression-bomb expansion: no legitimate stream in
// this repository inflates beyond 8 bytes per element of MaxElements.
const maxInflate = int64(8*MaxElements) + 1

// InflateBytes reverses FlateBytes. Output is capped so a crafted tiny
// stream cannot expand without bound.
func InflateBytes(b []byte) ([]byte, error) { return InflateBytesCap(b, maxInflate-1) }

// InflateBytesCap is InflateBytes with a caller-supplied output bound, for
// decoders that already know (from an earlier header field) how large the
// inflated content can legitimately be. The effective bound is further
// clamped by the global maxInflate and the decode allocation cap, so a
// hostile length claim cannot widen it. maxOut < 0 means "no caller bound".
func InflateBytesCap(b []byte, maxOut int64) ([]byte, error) {
	if maxOut < 0 || maxOut > maxInflate-1 {
		maxOut = maxInflate - 1
	}
	if c := DecodeAllocCap(); maxOut > c {
		maxOut = c
	}
	r := flate.NewReader(bytes.NewReader(b))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, maxOut+1))
	if err != nil {
		return nil, Classify(fmt.Errorf("compress: inflate: %w", err))
	}
	if int64(len(out)) > maxOut {
		return nil, fmt.Errorf("compress: inflated output exceeds %d bytes: %w", maxOut, ErrCorrupt)
	}
	return out, nil
}

// Flate is a lossless general-purpose codec over the raw float64 bytes of a
// field. It stands in for the "conventional lossless compressor" baselines
// the paper contrasts with.
type Flate struct {
	Level int // flate compression level; 0 means flate.DefaultCompression
}

// NewFlate returns a Flate codec at the given level.
func NewFlate(level int) *Flate { return &Flate{Level: level} }

// Name implements Codec.
func (c *Flate) Name() string { return fmt.Sprintf("flate(l=%d)", c.level()) }

// Lossless implements Codec.
func (c *Flate) Lossless() bool { return true }

// AbsErrorBound implements ErrorBounded: flate is lossless.
func (c *Flate) AbsErrorBound(f *grid.Field) (float64, bool) { return 0, true }

func (c *Flate) level() int {
	if c.Level == 0 {
		return flate.DefaultCompression
	}
	return c.Level
}

// Compress implements Codec.
func (c *Flate) Compress(f *grid.Field) ([]byte, error) {
	hdr := EncodeDimsHeader(f.Dims)
	body, err := FlateBytes(f.Bytes(), c.level())
	if err != nil {
		return nil, err
	}
	return append(hdr, body...), nil
}

// Decompress implements Codec.
func (c *Flate) Decompress(b []byte) (*grid.Field, error) {
	dims, rest, err := DecodeDimsHeader(b)
	if err != nil {
		return nil, err
	}
	n := int64(1)
	for _, d := range dims {
		n *= int64(d)
	}
	raw, err := InflateBytesCap(rest, 8*n)
	if err != nil {
		return nil, err
	}
	f, err := grid.FromBytes(raw, dims...)
	if err != nil {
		return nil, Classify(err)
	}
	return f, nil
}

package fpc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lrm/internal/compress"
	"lrm/internal/grid"
)

func roundTrip(t *testing.T, c *Codec, f *grid.Field) []byte {
	t.Helper()
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Data) != len(f.Data) {
		t.Fatalf("length mismatch: %d vs %d", len(dec.Data), len(f.Data))
	}
	for i := range f.Data {
		if math.Float64bits(dec.Data[i]) != math.Float64bits(f.Data[i]) {
			t.Fatalf("bit-exactness violated at %d: %x vs %x", i,
				math.Float64bits(dec.Data[i]), math.Float64bits(f.Data[i]))
		}
	}
	return enc
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("expected level-0 rejection")
	}
	if _, err := New(25); err == nil {
		t.Fatal("expected level-25 rejection")
	}
	c := MustNew(16)
	if !c.Lossless() {
		t.Fatal("fpc must report lossless")
	}
	if c.Name() != "fpc(l=16)" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestLeadingZeroBytes(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 8},
		{1, 7},
		{0xff, 7},
		{0x100, 6},
		{1 << 32, 3}, // 3 leading zero bytes... (bytes 7..5 zero, byte 4 = 1) -> 3
		{1 << 24, 3}, // 4 collapses to 3
		{1 << 63, 0},
	}
	for _, c := range cases {
		if got := leadingZeroBytes(c.x); got != c.want {
			t.Fatalf("leadingZeroBytes(%#x) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestLzbCodeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 6, 7, 8} {
		if got := codeToLzb(lzbToCode(n)); got != n {
			t.Fatalf("lzb code round trip %d -> %d", n, got)
		}
	}
}

func TestRoundTripSmooth(t *testing.T) {
	f := grid.New(32, 32)
	for j := 0; j < 32; j++ {
		for i := 0; i < 32; i++ {
			f.Set2(1000+math.Sin(float64(j)/6)+math.Cos(float64(i)/8), j, i)
		}
	}
	c := MustNew(16)
	enc := roundTrip(t, c, f)
	if r := compress.Ratio(f, enc); r < 1.2 {
		t.Fatalf("smooth ratio = %.2f, expected some compression", r)
	}
}

func TestRoundTripSpecialValues(t *testing.T) {
	f, _ := grid.FromData([]float64{
		0, math.Copysign(0, -1), 1, -1,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, math.SmallestNonzeroFloat64, -math.Pi,
	}, 10)
	roundTrip(t, MustNew(8), f)
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := grid.New(5, 7, 11)
	for i := range f.Data {
		f.Data[i] = math.Float64frombits(rng.Uint64())
	}
	roundTrip(t, MustNew(12), f)
}

func TestOddLengths(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 100, 101} {
		f := grid.New(n)
		for i := range f.Data {
			f.Data[i] = float64(i) * 1.5
		}
		roundTrip(t, MustNew(10), f)
	}
}

func TestRepetitiveDataCompresses(t *testing.T) {
	// A repeating sequence is FPC's best case: the fcm learns it exactly.
	f := grid.New(4096)
	for i := range f.Data {
		f.Data[i] = float64(i % 16)
	}
	enc := roundTrip(t, MustNew(16), f)
	if r := compress.Ratio(f, enc); r < 4 {
		t.Fatalf("repetitive ratio = %.2f, expected > 4", r)
	}
}

func TestConstantDataNearOptimal(t *testing.T) {
	f := grid.New(4096)
	for i := range f.Data {
		f.Data[i] = 7.25
	}
	enc := roundTrip(t, MustNew(16), f)
	// A perfectly predicted stream costs ~0.5 bytes/value (the nibble).
	if len(enc) > f.Len() {
		t.Fatalf("constant data encoded to %d bytes for %d values", len(enc), f.Len())
	}
}

func TestLevelAffectsButPreservesLosslessness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := grid.New(2000)
	walk := 0.0
	for i := range f.Data {
		walk += rng.NormFloat64()
		f.Data[i] = walk
	}
	for _, level := range []int{4, 8, 16, 20} {
		roundTrip(t, MustNew(level), f)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	c := MustNew(8)
	check := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		f, err := grid.FromData(vals, len(vals))
		if err != nil {
			return false
		}
		enc, err := c.Compress(f)
		if err != nil {
			return false
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			return false
		}
		for i := range vals {
			if math.Float64bits(dec.Data[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressGarbage(t *testing.T) {
	c := MustNew(8)
	cases := [][]byte{
		nil,
		{},
		{1, 4},
		{1, 4, 0},                     // level 0
		{1, 4, 8, 0, 0, 0, 0},         // missing payload
		{1, 4, 8, 255, 0, 0, 0, 1, 2}, // absurd residual length
	}
	for i, b := range cases {
		if _, err := c.Decompress(b); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	f := grid.New(16)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	enc, _ := c.Compress(f)
	if _, err := c.Decompress(enc[:len(enc)-1]); err == nil {
		t.Fatal("expected truncation error")
	}
	if _, err := c.Decompress(append(enc, 0)); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func TestDecodeUsesStreamLevelNotCodecLevel(t *testing.T) {
	f := grid.New(64)
	for i := range f.Data {
		f.Data[i] = math.Sqrt(float64(i))
	}
	enc, err := MustNew(20).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := MustNew(4).Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if dec.Data[i] != f.Data[i] {
			t.Fatal("stream level ignored on decode")
		}
	}
}

package fpc

import (
	"testing"

	"lrm/internal/grid"
)

// FuzzDecompress asserts the fpc stream parser never panics on arbitrary
// bytes: input either decodes or errors.
func FuzzDecompress(f *testing.F) {
	field := grid.New(5, 9)
	for i := range field.Data {
		field.Data[i] = float64(i%7) * 1.25
	}
	for _, level := range []int{1, 12, 16} {
		enc, err := MustNew(level).Compress(field)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte("\x00\x01\x02\xff\xfe\xfd not an fpc stream"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := MustNew(16)
		if out, err := c.Decompress(data); err == nil && out != nil {
			if out.Len() == 0 || out.Len() > 1<<24 {
				t.Fatalf("implausible decode length %d", out.Len())
			}
		}
	})
}

package fpc

import (
	"errors"
	"testing"

	"lrm/internal/compress"
	"lrm/internal/grid"
)

// TestDecompressEveryPrefix asserts the decode contract on truncation: every
// strict prefix of a valid stream must fail with an error wrapping
// compress.ErrTruncated or compress.ErrCorrupt — never panic, never decode
// to a field.
func TestDecompressEveryPrefix(t *testing.T) {
	f := grid.New(8, 9)
	for j := 0; j < 8; j++ {
		for i := 0; i < 9; i++ {
			f.Set2(float64(j*i)*0.125+1.5, j, i)
		}
	}
	c := MustNew(10)
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(enc); n++ {
		_, err := c.Decompress(enc[:n])
		if err == nil {
			t.Fatalf("prefix %d/%d decoded without error", n, len(enc))
		}
		if !errors.Is(err, compress.ErrTruncated) && !errors.Is(err, compress.ErrCorrupt) {
			t.Fatalf("prefix %d/%d: unclassified error: %v", n, len(enc), err)
		}
	}
}

// Package fpc implements the FPC lossless double-precision compressor of
// Burtscher & Ratanaworabhan (IEEE Trans. Computers 2009), the lossless
// comparator the paper uses in Fig. 3.
//
// FPC predicts each 64-bit IEEE double with two hash-table predictors — an
// fcm (finite context method) over recent values and a dfcm (differential
// fcm) over recent deltas — XORs the better prediction with the true bits,
// and encodes the residual as a 4-bit header (predictor selector + count of
// leading zero bytes) plus the non-zero residual bytes. Header nibbles are
// packed in pairs, exactly as in the reference implementation.
package fpc

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"lrm/internal/compress"
	"lrm/internal/grid"
	"lrm/internal/invariant"
	"lrm/internal/obs"
	"lrm/internal/obs/trace"
)

// Hoisted predictor-selection counters: the encode loop accumulates plain
// locals and flushes once per call, so the hot path never touches atomics.
var (
	obsFCMSelected  = obs.GetCounter("fpc.fcm_selected")
	obsDFCMSelected = obs.GetCounter("fpc.dfcm_selected")
)

// Codec is an FPC compressor. Level selects the predictor table size:
// 2^level entries per table (the paper runs level 20, table size 2^24
// bytes; each entry is 8 bytes, so level = 20 gives 2*2^20*8 = 16 MiB).
type Codec struct {
	level uint
}

// New returns an FPC codec with 2^level-entry predictor tables.
func New(level int) (*Codec, error) {
	if level < 1 || level > 24 {
		return nil, fmt.Errorf("fpc: level %d out of range [1,24]", level)
	}
	return &Codec{level: uint(level)}, nil
}

// MustNew is New but panics on invalid level; for use in tables.
func MustNew(level int) *Codec {
	c, err := New(level)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements compress.Codec.
func (c *Codec) Name() string { return fmt.Sprintf("fpc(l=%d)", c.level) }

// Lossless implements compress.Codec.
func (c *Codec) Lossless() bool { return true }

// AbsErrorBound implements compress.ErrorBounded: FPC is lossless, so the
// pointwise bound is exactly zero.
func (c *Codec) AbsErrorBound(f *grid.Field) (float64, bool) { return 0, true }

// predictor state shared by encode and decode (they must evolve
// identically).
type predictor struct {
	fcm, dfcm []uint64
	fcmHash   uint64
	dfcmHash  uint64
	lastValue uint64
	mask      uint64
}

func newPredictor(level uint) *predictor {
	size := 1 << level
	return &predictor{
		fcm:  make([]uint64, size),
		dfcm: make([]uint64, size),
		mask: uint64(size - 1),
	}
}

// predict returns the two candidate predictions for the next value.
func (p *predictor) predict() (fcmPred, dfcmPred uint64) {
	return p.fcm[p.fcmHash], p.dfcm[p.dfcmHash] + p.lastValue
}

// update trains both tables with the true value.
func (p *predictor) update(trueVal uint64) {
	p.fcm[p.fcmHash] = trueVal
	p.fcmHash = ((p.fcmHash << 6) ^ (trueVal >> 48)) & p.mask

	delta := trueVal - p.lastValue
	p.dfcm[p.dfcmHash] = delta
	p.dfcmHash = ((p.dfcmHash << 2) ^ (delta >> 40)) & p.mask

	p.lastValue = trueVal
}

// leadingZeroBytes counts whole zero bytes from the most significant end,
// collapsing 4 to 3 so the count fits in 3 bits (FPC's trick: the code
// space {0,1,2,3,5,6,7,8} skips 4, which is rare).
func leadingZeroBytes(x uint64) int {
	n := 0
	for n < 8 && x>>(56-8*uint(n))&0xff == 0 {
		n++
	}
	if n == 4 {
		n = 3
	}
	return n
}

// lzbCode maps a leading-zero-byte count to the 3-bit code and back.
func lzbToCode(n int) uint8 {
	if n >= 5 {
		return uint8(n - 1)
	}
	return uint8(n)
}

func codeToLzb(c uint8) int {
	if c >= 4 {
		return int(c) + 1
	}
	return int(c)
}

// Compress implements compress.Codec.
func (c *Codec) Compress(f *grid.Field) ([]byte, error) {
	return c.CompressCtx(context.Background(), f)
}

// CompressCtx implements compress.CtxCodec: identical stream to Compress,
// with the span parented onto the span carried by ctx. FPC's value loop is
// inherently serial (the predictor tables evolve value by value), so the
// codec contributes a single span rather than shard children.
func (c *Codec) CompressCtx(ctx context.Context, f *grid.Field) ([]byte, error) {
	_, sp := trace.Start(ctx, "fpc.compress")
	defer sp.End()
	n := f.Len()
	p := newPredictor(c.level)

	headers := make([]byte, (n+1)/2) // one nibble per value
	var residuals []byte
	var nFCM, nDFCM int64

	for i, v := range f.Data {
		bits := math.Float64bits(v)
		fcmPred, dfcmPred := p.predict()
		xf := bits ^ fcmPred
		xd := bits ^ dfcmPred

		var sel uint8
		var resid uint64
		if lzf, lzd := leadingZeroBytes(xf), leadingZeroBytes(xd); lzf >= lzd {
			sel, resid = 0, xf
			nFCM++
		} else {
			sel, resid = 1, xd
			nDFCM++
		}
		lzb := leadingZeroBytes(resid)
		nibble := sel<<3 | lzbToCode(lzb)
		if invariant.Enabled {
			// Header-nibble boundary: the 3-bit code space must round-trip
			// the leading-zero-byte count (4 is collapsed to 3 upstream),
			// and the decoder must recover the true bits from the residual
			// it will read back.
			invariant.Assert(codeToLzb(lzbToCode(lzb)) == lzb, "fpc: lzb %d does not survive the 3-bit code", lzb)
			check := resid
			if sel == 0 {
				check ^= fcmPred
			} else {
				check ^= dfcmPred
			}
			invariant.Assert(check == bits, "fpc: residual %#x does not reconstruct value %#x", resid, bits)
		}
		if i%2 == 0 {
			headers[i/2] = nibble << 4
		} else {
			headers[i/2] |= nibble
		}
		for b := 8 - lzb - 1; b >= 0; b-- {
			residuals = append(residuals, byte(resid>>(8*uint(b))))
		}
		p.update(bits)
	}

	// The residual stream length is stored as a uint32; MaxElements keeps
	// legitimate fields far below this, so overflow means a pipeline bug.
	invariant.Assert(len(residuals) <= math.MaxUint32, "fpc: residual stream %d bytes overflows the u32 length field", len(residuals))

	out := compress.EncodeDimsHeader(f.Dims)
	out = append(out, byte(c.level))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(residuals)))
	out = append(out, headers...)
	out = append(out, residuals...)
	if sp != nil {
		obsFCMSelected.Add(nFCM)
		obsDFCMSelected.Add(nDFCM)
		sp.SetBytes(int64(8*n), int64(len(out)))
		sp.AddItems(int64(n))
	}
	return out, nil
}

// Decompress implements compress.Codec. Failures wrap the
// compress.ErrTruncated / compress.ErrCorrupt taxonomy.
func (c *Codec) Decompress(data []byte) (*grid.Field, error) {
	return c.DecompressCtx(context.Background(), data)
}

// DecompressCtx implements compress.CtxCodec.
func (c *Codec) DecompressCtx(ctx context.Context, data []byte) (*grid.Field, error) {
	_, sp := trace.Start(ctx, "fpc.decompress")
	defer sp.End()
	f, err := c.decompress(data)
	if err != nil {
		err = compress.Classify(err)
		sp.SetError(err)
		return nil, err
	}
	sp.SetBytes(int64(len(data)), int64(8*f.Len()))
	return f, nil
}

func (c *Codec) decompress(data []byte) (*grid.Field, error) {
	dims, rest, err := compress.DecodeDimsHeader(data)
	if err != nil {
		return nil, err
	}
	if len(rest) < 5 {
		return nil, fmt.Errorf("fpc: truncated stream: %w", compress.ErrTruncated)
	}
	level := uint(rest[0])
	if level < 1 || level > 24 {
		return nil, fmt.Errorf("fpc: invalid level %d in stream: %w", level, compress.ErrHeader)
	}
	// The predictor tables are sized by an untrusted header byte (up to
	// 2*2^24 entries); charge them against the decode cap before allocating.
	if err := compress.CheckedAlloc("fpc: predictor tables", 2<<level, 2<<level, 8); err != nil {
		return nil, err
	}
	residLen := int(binary.LittleEndian.Uint32(rest[1:5]))
	rest = rest[5:]

	n := 1
	for _, d := range dims {
		n *= d
	}
	headerLen := (n + 1) / 2
	if len(rest) < headerLen+residLen {
		return nil, fmt.Errorf("fpc: stream length %d < headers %d + residuals %d: %w",
			len(rest), headerLen, residLen, compress.ErrTruncated)
	}
	if len(rest) != headerLen+residLen {
		return nil, fmt.Errorf("fpc: stream length %d != headers %d + residuals %d: %w",
			len(rest), headerLen, residLen, compress.ErrCorrupt)
	}
	headers := rest[:headerLen]
	residuals := rest[headerLen:]

	p := newPredictor(level)
	f, err := compress.NewCheckedField("fpc: field", dims)
	if err != nil {
		return nil, err
	}
	rp := 0
	for i := 0; i < n; i++ {
		var nibble uint8
		if i%2 == 0 {
			nibble = headers[i/2] >> 4
		} else {
			nibble = headers[i/2] & 0xf
		}
		sel := nibble >> 3
		lzb := codeToLzb(nibble & 7)
		count := 8 - lzb
		if rp+count > len(residuals) {
			return nil, fmt.Errorf("fpc: residual bytes exhausted: %w", compress.ErrTruncated)
		}
		var resid uint64
		for b := 0; b < count; b++ {
			resid = resid<<8 | uint64(residuals[rp])
			rp++
		}
		fcmPred, dfcmPred := p.predict()
		var bits uint64
		if sel == 0 {
			bits = resid ^ fcmPred
		} else {
			bits = resid ^ dfcmPred
		}
		f.Data[i] = math.Float64frombits(bits)
		p.update(bits)
	}
	if rp != len(residuals) {
		return nil, fmt.Errorf("fpc: trailing residual bytes: %w", compress.ErrCorrupt)
	}
	return f, nil
}

// The codec is fully context-aware: plain Compress/Decompress delegate to
// the Ctx variants with a background context.
var _ compress.CtxCodec = (*Codec)(nil)

func init() {
	compress.RegisterDecoder("fpc", MustNew(16).Decompress)
	compress.RegisterCtxDecoder("fpc", func(ctx context.Context, b []byte, _ int) (*grid.Field, error) {
		return MustNew(16).DecompressCtx(ctx, b)
	})
}

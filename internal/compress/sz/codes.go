package sz

import (
	"fmt"

	"lrm/internal/compress"
	"lrm/internal/huffman"
)

// encodeCodes entropy-codes the quantization codes. Huffman is the right
// tool here: hit codes cluster tightly around `radius`, so the common bins
// cost only a few bits each. The count and pack stages shard across the
// worker pool without changing the output bytes.
func encodeCodes(codes []int, workers int) []byte {
	return huffman.EncodeParallel(codes, workers)
}

// decodeCodes reverses encodeCodes and validates the expected count.
func decodeCodes(b []byte, n int) ([]int, error) {
	codes, err := huffman.Decode(b)
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	if len(codes) != n {
		return nil, fmt.Errorf("sz: decoded %d codes, want %d: %w", len(codes), n, compress.ErrCorrupt)
	}
	return codes, nil
}

package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lrm/internal/compress"
	"lrm/internal/grid"
)

func smooth2D(n int) *grid.Field {
	f := grid.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			f.Set2(100+10*math.Sin(float64(j)/9)*math.Cos(float64(i)/7), j, i)
		}
	}
	return f
}

func TestNewValidation(t *testing.T) {
	for _, b := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := New(Abs, b); err == nil {
			t.Fatalf("expected error for bound %v", b)
		}
	}
	if _, err := New(Mode(9), 0.1); err == nil {
		t.Fatal("expected error for unknown mode")
	}
	c := MustNew(Abs, 1e-5)
	if c.Lossless() {
		t.Fatal("sz must report lossy")
	}
	if c.Mode() != Abs || c.Bound() != 1e-5 {
		t.Fatal("accessors broken")
	}
	if c.Name() != "sz(abs=1e-05)" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestAbsBoundHonoured(t *testing.T) {
	f := smooth2D(48)
	for _, eb := range []float64{1e-2, 1e-4, 1e-6} {
		c := MustNew(Abs, eb)
		enc, err := c.Compress(f)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f.Data {
			if math.Abs(f.Data[i]-dec.Data[i]) > eb*(1+1e-12) {
				t.Fatalf("eb=%v: error %v at %d exceeds bound", eb, math.Abs(f.Data[i]-dec.Data[i]), i)
			}
		}
	}
}

func TestAbsBoundOnRoughData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := grid.New(10, 10, 10)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64() * 1000
	}
	eb := 0.5
	c := MustNew(Abs, eb)
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-dec.Data[i]) > eb*(1+1e-12) {
			t.Fatalf("error at %d exceeds bound", i)
		}
	}
}

func TestValueRangeRelBound(t *testing.T) {
	f := smooth2D(32)
	lo, hi := f.MinMax()
	rel := 1e-4
	c := MustNew(ValueRangeRel, rel)
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	bound := rel * (hi - lo)
	for i := range f.Data {
		if math.Abs(f.Data[i]-dec.Data[i]) > bound*(1+1e-12) {
			t.Fatalf("range-rel error at %d exceeds %v", i, bound)
		}
	}
}

func TestPointwiseRelBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := grid.New(40, 40)
	for i := range f.Data {
		// Mix of magnitudes, signs, and exact zeros.
		switch rng.Intn(5) {
		case 0:
			f.Data[i] = 0
		case 1:
			f.Data[i] = -math.Exp(rng.Float64()*20 - 10)
		default:
			f.Data[i] = math.Exp(rng.Float64()*20 - 10)
		}
	}
	rel := 1e-3
	c := MustNew(PointwiseRel, rel)
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		v, d := f.Data[i], dec.Data[i]
		if v == 0 {
			if d != 0 {
				t.Fatalf("zero not preserved at %d: %v", i, d)
			}
			continue
		}
		if math.Abs(d-v) > rel*math.Abs(v)*(1+1e-9) {
			t.Fatalf("pw-rel error at %d: %v vs %v (rel %v)", i, d, v, math.Abs(d-v)/math.Abs(v))
		}
		if math.Signbit(d) != math.Signbit(v) {
			t.Fatalf("sign flipped at %d", i)
		}
	}
}

func TestSmoothDataCompressesWell(t *testing.T) {
	f := smooth2D(64)
	c := MustNew(Abs, 1e-3)
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	// Pure Lorenzo prediction (no curve-fitting selection) at a modest
	// bound: expect a clear win over the 8-byte raw encoding.
	if r := compress.Ratio(f, enc); r < 5 {
		t.Fatalf("smooth ratio = %.2f, expected > 5", r)
	}
}

func TestSmootherDataHigherRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	smooth := smooth2D(48)
	noisy := grid.New(48, 48)
	for i := range noisy.Data {
		noisy.Data[i] = rng.NormFloat64() * 100
	}
	c := MustNew(Abs, 1e-3)
	se, _ := c.Compress(smooth)
	ne, _ := c.Compress(noisy)
	if len(se) >= len(ne) {
		t.Fatalf("smooth (%dB) should beat noise (%dB)", len(se), len(ne))
	}
}

func TestConstantField(t *testing.T) {
	f := grid.New(20, 20)
	for i := range f.Data {
		f.Data[i] = 42.5
	}
	for _, c := range []*Codec{MustNew(Abs, 1e-6), MustNew(ValueRangeRel, 1e-5), MustNew(PointwiseRel, 1e-5)} {
		enc, err := c.Compress(f)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for i := range f.Data {
			if math.Abs(dec.Data[i]-42.5) > 1e-4 {
				t.Fatalf("%s: constant field corrupted: %v", c.Name(), dec.Data[i])
			}
		}
		if len(enc) > 400 {
			t.Fatalf("%s: constant field encoded to %d bytes", c.Name(), len(enc))
		}
	}
}

func TestAllRanks(t *testing.T) {
	shapes := [][]int{{100}, {17, 23}, {9, 11, 13}}
	c := MustNew(Abs, 1e-5)
	for _, dims := range shapes {
		f := grid.New(dims...)
		for i := range f.Data {
			f.Data[i] = math.Sin(float64(i) / 11)
		}
		enc, err := c.Compress(f)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		for i := range f.Data {
			if math.Abs(f.Data[i]-dec.Data[i]) > 1e-5*(1+1e-12) {
				t.Fatalf("%v: bound violated at %d", dims, i)
			}
		}
	}
}

func TestQuickAbsBound(t *testing.T) {
	check := func(raw []float64, seed int64) bool {
		vals := make([]float64, 0, len(raw)+1)
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e15 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			vals = append(vals, 0)
		}
		f, err := grid.FromData(vals, len(vals))
		if err != nil {
			return false
		}
		eb := 1e-3
		c := MustNew(Abs, eb)
		enc, err := c.Compress(f)
		if err != nil {
			return false
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			return false
		}
		for i := range vals {
			if math.Abs(vals[i]-dec.Data[i]) > eb*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsNaN(t *testing.T) {
	f := grid.New(4)
	f.Data[1] = math.NaN()
	if _, err := MustNew(Abs, 1e-3).Compress(f); err == nil {
		t.Fatal("expected NaN rejection")
	}
}

func TestDecompressGarbage(t *testing.T) {
	c := MustNew(Abs, 1e-3)
	cases := [][]byte{
		nil,
		{},
		{1, 4},
		{1, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		{9, 0, 0},
	}
	for i, b := range cases {
		if _, err := c.Decompress(b); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	f := smooth2D(16)
	enc, _ := c.Compress(f)
	if _, err := c.Decompress(enc[:len(enc)-10]); err == nil {
		t.Fatal("expected truncation error")
	}
	// Corrupt the mode byte.
	bad := append([]byte(nil), enc...)
	bad[len(compress.EncodeDimsHeader(f.Dims))] = 200
	if _, err := c.Decompress(bad); err == nil {
		t.Fatal("expected unknown-mode error")
	}
}

func TestCrossCodecStreams(t *testing.T) {
	// A stream compressed with one bound must decompress correctly through
	// a codec configured differently (streams are self-describing).
	f := smooth2D(24)
	enc, err := MustNew(Abs, 1e-6).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := MustNew(PointwiseRel, 0.5).Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-dec.Data[i]) > 1e-6*(1+1e-12) {
			t.Fatal("self-describing decode failed")
		}
	}
}

package sz

import (
	"math"
	"testing"

	"lrm/internal/grid"
)

// quadratic returns a piecewise-polynomial 1-D signal: the case the
// quadratic candidate exists for.
func quadratic(n int) *grid.Field {
	f := grid.New(n)
	for i := range f.Data {
		x := float64(i) / 50
		f.Data[i] = 3*x*x - 2*x + 7 + 0.5*math.Sin(x)
	}
	return f
}

func TestCurveFitName(t *testing.T) {
	c := MustNewCurveFit(Abs, 1e-4)
	if c.Name() != "sz(abs=1e-04,cf)" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestCurveFitValidation(t *testing.T) {
	if _, err := NewCurveFit(Abs, 0); err == nil {
		t.Fatal("expected invalid-bound error")
	}
	if _, err := NewCurveFit(Mode(9), 1e-3); err == nil {
		t.Fatal("expected unknown-mode error")
	}
}

func TestCurveFitBoundHonoured(t *testing.T) {
	f := quadratic(4000)
	for _, eb := range []float64{1e-2, 1e-5} {
		c := MustNewCurveFit(Abs, eb)
		enc, err := c.Compress(f)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f.Data {
			if math.Abs(f.Data[i]-dec.Data[i]) > eb*(1+1e-12) {
				t.Fatalf("eb=%v: bound violated at %d", eb, i)
			}
		}
	}
}

func TestCurveFitBeatsLorenzoOnPolynomialData(t *testing.T) {
	// On smooth polynomial trajectories the higher-order candidates predict
	// far better than the order-1 preceding-neighbour rule.
	f := quadratic(8000)
	eb := 1e-6
	plain, err := MustNew(Abs, eb).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := MustNewCurveFit(Abs, eb).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(cf) >= len(plain) {
		t.Fatalf("curve fit (%dB) did not beat Lorenzo (%dB) on polynomial data", len(cf), len(plain))
	}
}

func TestCurveFitSelfDescribingStream(t *testing.T) {
	// A plain-configured codec must decode a curve-fit stream correctly
	// (the flag travels in the stream).
	f := quadratic(500)
	enc, err := MustNewCurveFit(Abs, 1e-4).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := MustNew(PointwiseRel, 1).Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-dec.Data[i]) > 1e-4*(1+1e-12) {
			t.Fatalf("cross decode violated bound at %d", i)
		}
	}
}

func TestCurveFitMultiDimFallsBackToLorenzo(t *testing.T) {
	// 2-D data must produce identical streams with and without the flag's
	// predictor (modulo the flag byte itself).
	f := smooth2D(24)
	plain, err := MustNew(Abs, 1e-4).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := MustNewCurveFit(Abs, 1e-4).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	// Same length except possibly deflate differences from the flag byte.
	if len(plain) != len(cf) {
		t.Fatalf("2-D streams differ beyond flag byte: %d vs %d", len(plain), len(cf))
	}
	dec, err := MustNew(Abs, 1).Decompress(cf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-dec.Data[i]) > 1e-4*(1+1e-12) {
			t.Fatal("2-D curve-fit decode violated bound")
		}
	}
}

func TestUnknownFlagRejected(t *testing.T) {
	f := quadratic(64)
	enc, err := MustNew(Abs, 1e-3).Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	// The flags byte sits right after dims (1 rank byte + uvarint) + mode.
	bad := append([]byte(nil), enc...)
	// dims header for {64}: rank byte + 1-byte uvarint = 2 bytes; mode at 2;
	// flags at 3.
	bad[3] |= 0x80
	if _, err := MustNew(Abs, 1e-3).Decompress(bad); err == nil {
		t.Fatal("expected unknown-flags error")
	}
}

func TestCurveFitPredictEdgeCases(t *testing.T) {
	// Short prefixes fall back gracefully (no out-of-range access).
	d := []float64{1, 3, 7, 13, 21}
	dims := []int{5}
	for idx := 0; idx < 5; idx++ {
		got := curveFitPredict(d, dims, idx)
		if math.IsNaN(got) {
			t.Fatalf("NaN prediction at %d", idx)
		}
	}
	// On an exactly quadratic sequence (second differences constant), the
	// selected predictor at idx>=4 must be exact.
	q := []float64{0, 1, 4, 9, 16, 25}
	if got := curveFitPredict(q, []int{6}, 5); got != 25 {
		t.Fatalf("quadratic prediction = %v, want 25", got)
	}
}

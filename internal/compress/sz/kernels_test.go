package sz

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// quantizeCoreScalar is the pre-kernel reference: the per-point generic
// predictor with div/mod index recovery, swept in raster order.
func quantizeCoreScalar(data []float64, dims []int, eb float64, decoded []float64, pred4 predictor) (codes []int, exact []float64) {
	codes = make([]int, len(data))
	for idx := range data {
		codes[idx] = quantizePoint(data, decoded, dims, eb, pred4, idx)
		if codes[idx] == unpredictable {
			exact = append(exact, data[idx])
		}
	}
	return codes, exact
}

// dequantizeCoreScalar is the pre-kernel serial decode reference.
func dequantizeCoreScalar(codes []int, dims []int, eb float64, exact []float64, pred4 predictor) ([]float64, error) {
	out := make([]float64, len(codes))
	e := 0
	for idx, code := range codes {
		if code == unpredictable {
			if e >= len(exact) {
				return nil, fmt.Errorf("reference: pool exhausted")
			}
			out[idx] = exact[e]
			e++
			continue
		}
		if code < 0 || code > unpredictable {
			return nil, fmt.Errorf("reference: invalid code %d", code)
		}
		pred := pred4(out, dims, idx)
		out[idx] = pred + 2*eb*float64(code-radius)
	}
	if e != len(exact) {
		return nil, fmt.Errorf("reference: unconsumed exact values")
	}
	return out, nil
}

// kernelField synthesizes data with smooth regions, jumps (prediction
// misses), exact zeros, and negatives, over the given dims.
func kernelField(rng *rand.Rand, dims []int) []float64 {
	n := 1
	for _, d := range dims {
		n *= d
	}
	data := make([]float64, n)
	for i := range data {
		x := float64(i)
		data[i] = math.Sin(x*0.02)*4 + math.Cos(x*0.003)*9
		switch rng.Intn(40) {
		case 0:
			data[i] *= math.Exp(float64(rng.Intn(40)) - 20) // wild jump: miss
		case 1:
			data[i] = 0
		case 2:
			data[i] = -data[i]
		}
	}
	return data
}

var kernelDims = [][]int{
	{1}, {2}, {37}, {4096}, {20000},
	{1, 1}, {1, 40}, {40, 1}, {33, 47}, {128, 160},
	{1, 1, 1}, {1, 4, 4}, {16, 16, 16}, {31, 17, 9}, {24, 40, 44},
}

// TestQuantizeKernelsMatchScalar proves the batched row kernels reproduce
// the per-point reference bit for bit — codes, reconstruction, and the
// exact pool — across ranks, boundary shapes, and worker counts.
func TestQuantizeKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, dims := range kernelDims {
		for _, eb := range []float64{1e-3, 1e-7} {
			data := kernelField(rng, dims)
			refDecoded := make([]float64, len(data))
			refCodes, refExact := quantizeCoreScalar(data, dims, eb, refDecoded, lorenzoPredict)

			for _, workers := range []int{1, 3, 8} {
				decoded := make([]float64, len(data))
				codes, exact := quantizeCore(data, dims, eb, decoded, false, workers)
				if len(codes) != len(refCodes) {
					t.Fatalf("dims=%v eb=%g w=%d: code count %d != %d", dims, eb, workers, len(codes), len(refCodes))
				}
				for i := range codes {
					if codes[i] != refCodes[i] {
						t.Fatalf("dims=%v eb=%g w=%d: code[%d] = %d, scalar %d", dims, eb, workers, i, codes[i], refCodes[i])
					}
					if math.Float64bits(decoded[i]) != math.Float64bits(refDecoded[i]) {
						t.Fatalf("dims=%v eb=%g w=%d: decoded[%d] = %x, scalar %x",
							dims, eb, workers, i, math.Float64bits(decoded[i]), math.Float64bits(refDecoded[i]))
					}
				}
				if len(exact) != len(refExact) {
					t.Fatalf("dims=%v eb=%g w=%d: pool size %d != %d", dims, eb, workers, len(exact), len(refExact))
				}
				for i := range exact {
					if math.Float64bits(exact[i]) != math.Float64bits(refExact[i]) {
						t.Fatalf("dims=%v eb=%g w=%d: pool[%d] differs", dims, eb, workers, i)
					}
				}

				// Decode side: kernels vs scalar reference, same worker sweep.
				back, err := dequantizeCore(codes, dims, eb, exact, false, workers)
				if err != nil {
					t.Fatalf("dims=%v eb=%g w=%d: dequantize: %v", dims, eb, workers, err)
				}
				refBack, err := dequantizeCoreScalar(refCodes, dims, eb, refExact, lorenzoPredict)
				if err != nil {
					t.Fatalf("dims=%v: reference dequantize: %v", dims, err)
				}
				for i := range back {
					if math.Float64bits(back[i]) != math.Float64bits(refBack[i]) {
						t.Fatalf("dims=%v eb=%g w=%d: out[%d] = %x, scalar %x",
							dims, eb, workers, i, math.Float64bits(back[i]), math.Float64bits(refBack[i]))
					}
					if math.Abs(back[i]-data[i]) > eb {
						t.Fatalf("dims=%v eb=%g: error bound violated at %d", dims, eb, i)
					}
				}
			}
		}
	}
}

// TestCurveFitKernelsMatchScalar covers the curve-fit configuration: 1-D
// keeps the adaptive scalar path, multi-D must take the Lorenzo kernels and
// still match the generic curveFitPredict (which falls back to Lorenzo).
func TestCurveFitKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, dims := range [][]int{{4096}, {33, 47}, {16, 16, 16}} {
		data := kernelField(rng, dims)
		eb := 1e-5
		refDecoded := make([]float64, len(data))
		refCodes, refExact := quantizeCoreScalar(data, dims, eb, refDecoded, curveFitPredict)
		for _, workers := range []int{1, 8} {
			decoded := make([]float64, len(data))
			codes, exact := quantizeCore(data, dims, eb, decoded, true, workers)
			for i := range codes {
				if codes[i] != refCodes[i] {
					t.Fatalf("dims=%v w=%d: code[%d] = %d, scalar %d", dims, workers, i, codes[i], refCodes[i])
				}
			}
			back, err := dequantizeCore(codes, dims, eb, exact, true, workers)
			if err != nil {
				t.Fatal(err)
			}
			refBack, err := dequantizeCoreScalar(refCodes, dims, eb, refExact, curveFitPredict)
			if err != nil {
				t.Fatal(err)
			}
			for i := range back {
				if math.Float64bits(back[i]) != math.Float64bits(refBack[i]) {
					t.Fatalf("dims=%v w=%d: out[%d] differs from scalar", dims, workers, i)
				}
			}
		}
	}
}

// TestDequantizeKernelErrors pins the corrupt-input error semantics of the
// kernelized decoder against the reference: same failure, same raster
// detection order.
func TestDequantizeKernelErrors(t *testing.T) {
	dims := []int{16, 16, 16}
	n := 16 * 16 * 16
	codes := make([]int, n)
	for i := range codes {
		codes[i] = radius
	}

	bad := append([]int(nil), codes...)
	bad[100] = -1
	if _, err := dequantizeCore(bad, dims, 1e-5, nil, false, 1); err == nil {
		t.Fatal("invalid code not rejected")
	}

	starved := append([]int(nil), codes...)
	starved[50] = unpredictable
	if _, err := dequantizeCore(starved, dims, 1e-5, nil, false, 1); err == nil {
		t.Fatal("pool exhaustion not rejected")
	}

	if _, err := dequantizeCore(codes, dims, 1e-5, []float64{1.5}, false, 1); err == nil {
		t.Fatal("unconsumed pool not rejected")
	}
}

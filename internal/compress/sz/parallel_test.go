package sz

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"lrm/internal/grid"
)

// TestParallelByteIdentity: the predict–quantize wavefront and the sharded
// Huffman pack must emit the identical stream at every worker count, and
// decode it to the bitwise-identical field. Shapes straddle the wavefront
// gate (small fields decline tiling and stay serial — also identical by
// construction, but exercised here for completeness).
func TestParallelByteIdentity(t *testing.T) {
	shapes := [][]int{{64}, {1000}, {9, 11}, {128, 130}, {24, 25, 26}}
	codecs := []*Codec{
		MustNew(Abs, 1e-4),
		MustNew(ValueRangeRel, 1e-4),
		MustNew(PointwiseRel, 1e-3),
		MustNewCurveFit(Abs, 1e-4),
	}
	rng := rand.New(rand.NewSource(11))
	for _, dims := range shapes {
		f := grid.New(dims...)
		for i := range f.Data {
			f.Data[i] = math.Cos(float64(i)/13) + 0.05*rng.NormFloat64()
		}
		for _, serial := range codecs {
			want, err := serial.WithWorkers(1).Compress(f)
			if err != nil {
				t.Fatalf("%s %v: serial: %v", serial.Name(), dims, err)
			}
			for _, w := range []int{2, 4, 8} {
				got, err := serial.WithWorkers(w).Compress(f)
				if err != nil {
					t.Fatalf("%s %v w=%d: %v", serial.Name(), dims, w, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s %v: workers=%d stream differs from serial", serial.Name(), dims, w)
				}
				dec1, err := serial.WithWorkers(1).Decompress(want)
				if err != nil {
					t.Fatalf("%s %v: serial decompress: %v", serial.Name(), dims, err)
				}
				decW, err := serial.WithWorkers(w).Decompress(want)
				if err != nil {
					t.Fatalf("%s %v w=%d: decompress: %v", serial.Name(), dims, w, err)
				}
				for i := range dec1.Data {
					if math.Float64bits(dec1.Data[i]) != math.Float64bits(decW.Data[i]) {
						t.Fatalf("%s %v w=%d: decoded value %d differs bitwise", serial.Name(), dims, w, i)
					}
				}
			}
		}
	}
}

// TestWithWorkersDoesNotMutate: WithWorkers returns a bound copy.
func TestWithWorkersDoesNotMutate(t *testing.T) {
	c := MustNew(Abs, 1e-5)
	p := c.WithWorkers(4)
	if c.workers != 0 {
		t.Fatalf("WithWorkers mutated the receiver: workers=%d", c.workers)
	}
	if pc, ok := p.(*Codec); !ok || pc.workers != 4 {
		t.Fatalf("WithWorkers(4) returned %#v", p)
	}
}

package sz

import (
	"crypto/sha256"
	"fmt"
	"math"
	"testing"

	"lrm/internal/compress"
	"lrm/internal/grid"
	"lrm/internal/parallel"
)

// The hashes below were captured from the pre-rewrite scalar Lorenzo
// kernels (per-point predictor dispatch with div/mod index recovery),
// before the batched row kernels landed. The rewritten kernels MUST
// reproduce these streams byte for byte at every worker count.

func goldenSynth(t *testing.T, dims ...int) *grid.Field {
	t.Helper()
	f := grid.New(dims...)
	for i := range f.Data {
		x := float64(i)
		f.Data[i] = math.Sin(x*0.017)*3.5 + math.Cos(x*0.0013)*11 + 0.25*math.Sin(x*0.41)
	}
	return f
}

func goldenHash(b []byte) string {
	s := sha256.Sum256(b)
	return fmt.Sprintf("%x", s[:8])
}

var goldenFields = map[string][]int{
	"1d-37":       {37},
	"1d-4096":     {4096},
	"2d-33x47":    {33, 47},
	"2d-128x96":   {128, 96},
	"3d-16":       {16, 16, 16},
	"3d-31x17x9":  {31, 17, 9},
	"3d-40x44x48": {40, 44, 48},
}

var szGoldenStreams = map[[2]string]string{
	{"sz-abs", "1d-37"}:       "fa9604838100a3b2",
	{"sz-abs", "1d-4096"}:     "cc2a91644ad5d582",
	{"sz-abs", "2d-33x47"}:    "f39870bf5e64464c",
	{"sz-abs", "2d-128x96"}:   "4af7495f34666421",
	{"sz-abs", "3d-16"}:       "008d84334f1f9fae",
	{"sz-abs", "3d-31x17x9"}:  "8e1238d1690a9473",
	{"sz-abs", "3d-40x44x48"}: "7b29e0a0b7385819",

	{"sz-rel", "1d-37"}:       "3e89723a430c8e5b",
	{"sz-rel", "1d-4096"}:     "5435e33cca428f3e",
	{"sz-rel", "2d-33x47"}:    "ba2be97932777f7f",
	{"sz-rel", "2d-128x96"}:   "b0c353af7a21bf7b",
	{"sz-rel", "3d-16"}:       "1be345bf35892e1e",
	{"sz-rel", "3d-31x17x9"}:  "1bb531e9c6be2052",
	{"sz-rel", "3d-40x44x48"}: "df0c75823ac2d3d2",

	{"sz-pwrel", "1d-37"}:       "2a54b9e54e54dacf",
	{"sz-pwrel", "1d-4096"}:     "2ab9efae36d9bcdf",
	{"sz-pwrel", "2d-33x47"}:    "beac39ed447e03ee",
	{"sz-pwrel", "2d-128x96"}:   "b967e2f2867e7c8c",
	{"sz-pwrel", "3d-16"}:       "323015d2419f04d5",
	{"sz-pwrel", "3d-31x17x9"}:  "1712d20d41b93eba",
	{"sz-pwrel", "3d-40x44x48"}: "de0a8be7831133d0",

	{"sz-cf", "1d-37"}:       "9d7735b0a16ea65a",
	{"sz-cf", "1d-4096"}:     "76266b9d6aec3be8",
	{"sz-cf", "2d-33x47"}:    "9e1cb7343d2fdc5f",
	{"sz-cf", "2d-128x96"}:   "e224d6f035495ac0",
	{"sz-cf", "3d-16"}:       "7969b188212d45f6",
	{"sz-cf", "3d-31x17x9"}:  "070c88b9b3dcb197",
	{"sz-cf", "3d-40x44x48"}: "a8b560420c71cc57",
}

func szGoldenCodec(t *testing.T, name string) *Codec {
	t.Helper()
	switch name {
	case "sz-abs":
		return MustNew(Abs, 1e-5)
	case "sz-rel":
		return MustNew(ValueRangeRel, 1e-3)
	case "sz-pwrel":
		return MustNew(PointwiseRel, 1e-2)
	case "sz-cf":
		return MustNewCurveFit(Abs, 1e-6)
	}
	t.Fatalf("unknown codec fixture %q", name)
	return nil
}

// TestGoldenStreams locks the compressed output to the pre-rewrite scalar
// kernels at workers=1 and workers=8 (cutover disabled so the 8-way
// wavefront genuinely shards even the small fixtures).
func TestGoldenStreams(t *testing.T) {
	for key, want := range szGoldenStreams {
		cn, fn := key[0], key[1]
		f := goldenSynth(t, goldenFields[fn]...)
		base := szGoldenCodec(t, cn)
		for _, workers := range []int{1, 8} {
			c := base.WithParallel(parallel.Config{Workers: workers, MinShardBytes: -1})
			enc, err := c.Compress(f)
			if err != nil {
				t.Fatalf("%s/%s workers=%d: %v", cn, fn, workers, err)
			}
			if got := goldenHash(enc); got != want {
				t.Errorf("%s/%s workers=%d: stream hash %s, want golden %s", cn, fn, workers, got, want)
			}
			back, err := c.Decompress(enc)
			if err != nil {
				t.Fatalf("%s/%s workers=%d decode: %v", cn, fn, workers, err)
			}
			if back.Len() != f.Len() {
				t.Fatalf("%s/%s: round trip length %d != %d", cn, fn, back.Len(), f.Len())
			}
		}
	}
}

var _ compress.ParallelTunable = (*Codec)(nil)

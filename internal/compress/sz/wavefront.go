package sz

import (
	"lrm/internal/parallel"
)

// This file parallelizes the Lorenzo predict–quantize recurrence. The
// predictor of point (k, j, i) reads only already-reconstructed neighbours
// with strictly smaller per-dimension indices, so the domain can be cut
// into a grid of tiles whose dependencies run only "up and left": tile
// (a, b) needs tiles (a-1, b), (a, b-1) and (a-1, b-1). Tiles on the same
// anti-diagonal a+b = d are therefore mutually independent and run
// concurrently, sweeping the diagonals in order (a wavefront).
//
// Every point performs the identical floating-point arithmetic on the
// identical operands as the serial raster scan — only the visit order of
// independent points changes — so the quantization codes and the
// reconstruction are bit-identical at any worker or tile count. Misses are
// collected into the exact-value pool by a separate raster pass over the
// finished codes, which reproduces the serial pool order.
//
// 1-D data has a strictly sequential dependency chain (and the adaptive
// curve-fit predictor is 1-D only), so rank 1 always runs serially.

// minWavefrontPoints gates the wavefront: below this the per-diagonal
// fork/join barriers cost more than the quantization work.
const minWavefrontPoints = 1 << 14

// wavefrontTiles picks the tile-grid extent along a dimension of length n:
// about two tiles per worker for pipeline fill, but never tiles shorter
// than 4 points, and never more tiles than points.
func wavefrontTiles(n, workers int) int {
	g := 2 * workers
	if g > n/4 {
		g = n / 4
	}
	if g < 1 {
		g = 1
	}
	return g
}

// rowFn processes the contiguous point run [x0,x1) of row (k, j); k is 0
// for rank-2 domains. All strictly-lower-index neighbours of every point
// in the run are complete when the callback fires, so serial raster sweeps
// and wavefront tile sweeps drive the identical kernels.
type rowFn func(k, j, x0, x1 int)

// wavefront2 sweeps an (n0, n1) domain in anti-diagonal tile order,
// calling fn once per contiguous i1-run of each tile row, dependencies
// complete.
func wavefront2(n0, n1, workers int, fn func(i0, i1lo, i1hi int)) {
	g0 := wavefrontTiles(n0, workers)
	g1 := wavefrontTiles(n1, workers)
	for d := 0; d <= g0+g1-2; d++ {
		lo := d - g1 + 1
		if lo < 0 {
			lo = 0
		}
		hi := d
		if hi > g0-1 {
			hi = g0 - 1
		}
		parallel.For(workers, hi-lo+1, func(t int) {
			a := lo + t
			b := d - a
			i0lo, i0hi := parallel.ShardBounds(n0, g0, a)
			i1lo, i1hi := parallel.ShardBounds(n1, g1, b)
			for i0 := i0lo; i0 < i0hi; i0++ {
				fn(i0, i1lo, i1hi)
			}
		})
	}
}

// wavefrontRows sweeps the whole domain as row runs, scheduling row(k, j,
// x0, x1) so every point's strictly-lower-index neighbours are already
// processed. Rank 2 tiles (y, x), so rows arrive as x-segments; rank 3
// tiles (z, y) with full x rows inside a tile, which keeps the inner loop
// contiguous. Returns false when the domain does not warrant (or support)
// the wavefront; the caller must then sweep rows serially.
func wavefrontRows(dims []int, workers int, row rowFn) bool {
	n := 1
	for _, d := range dims {
		n *= d
	}
	if workers <= 1 || n < minWavefrontPoints {
		return false
	}
	switch len(dims) {
	case 2:
		ny, nx := dims[0], dims[1]
		if wavefrontTiles(ny, workers) < 2 || wavefrontTiles(nx, workers) < 2 {
			return false
		}
		wavefront2(ny, nx, workers, func(y, xlo, xhi int) {
			row(0, y, xlo, xhi)
		})
		return true
	case 3:
		nz, ny, nx := dims[0], dims[1], dims[2]
		if wavefrontTiles(nz, workers) < 2 || wavefrontTiles(ny, workers) < 2 {
			return false
		}
		wavefront2(nz, ny, workers, func(z, ylo, yhi int) {
			for y := ylo; y < yhi; y++ {
				row(z, y, 0, nx)
			}
		})
		return true
	default:
		return false
	}
}

// serialRows sweeps every row of a rank-2 or rank-3 domain in raster order.
func serialRows(dims []int, row rowFn) {
	nx := dims[len(dims)-1]
	if len(dims) == 2 {
		for j := 0; j < dims[0]; j++ {
			row(0, j, 0, nx)
		}
		return
	}
	for k := 0; k < dims[0]; k++ {
		for j := 0; j < dims[1]; j++ {
			row(k, j, 0, nx)
		}
	}
}

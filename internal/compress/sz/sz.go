// Package sz implements an error-bounded predictive compressor modeled on
// SZ 1.4 (Di & Cappello, IPDPS 2016; Tao et al., IPDPS 2017), the second
// lossy compressor the paper evaluates.
//
// The pipeline follows the four steps the paper lists (Section II-A):
//
//  1. Predict each point from its already-decoded neighbours with a Lorenzo
//     (multidimensional polynomial) predictor.
//  2. On a prediction hit, encode the point as a linear-scaling quantization
//     code (an m-bit integer bin of the prediction error).
//  3. On a miss, fall back to storing the value's binary representation.
//  4. Entropy-code the quantization codes with Huffman and squeeze the
//     remaining redundancy with a flate (LZ77-family) pass.
//
// Three error-bound modes are supported, matching the SZ configuration
// surface the paper exercises: absolute, value-range-relative, and
// point-wise relative (implemented, like SZ 2.x, with a logarithmic
// pre-transform so the absolute machinery can bound relative error).
package sz

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"lrm/internal/compress"
	"lrm/internal/grid"
	"lrm/internal/invariant"
	"lrm/internal/obs"
	"lrm/internal/obs/trace"
	"lrm/internal/parallel"
)

// Hoisted observability metrics: pointer lookups stay off the hot path, and
// recording is gated per call site on the span (nil when obs is disabled).
var (
	obsBinHits       = obs.GetCounter("sz.bin_hits")
	obsUnpredictable = obs.GetCounter("sz.unpredictable")
)

// Mode selects how the error bound is interpreted.
type Mode uint8

const (
	// Abs bounds |original - decompressed| <= Bound pointwise.
	Abs Mode = iota
	// ValueRangeRel bounds the absolute error by Bound * (max - min).
	ValueRangeRel
	// PointwiseRel bounds |original - decompressed| <= Bound * |original|
	// for every point (zeros are preserved exactly).
	PointwiseRel
)

func (m Mode) String() string {
	switch m {
	case Abs:
		return "abs"
	case ValueRangeRel:
		return "rel"
	case PointwiseRel:
		return "pwrel"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// quantization radius: 2^15 bins on each side of the prediction, i.e. SZ's
// default 16-bit (65536-bin) linear-scaling quantization.
const radius = 1 << 15

// unpredictable is the quantization code reserved for prediction misses.
const unpredictable = 2 * radius

// flagCurveFit marks streams encoded with adaptive curve-fitting prediction.
const flagCurveFit byte = 1

// Codec is an SZ-style error-bounded compressor.
type Codec struct {
	mode     Mode
	bound    float64
	curveFit bool
	workers  int   // worker pool size; 0 = parallel.DefaultWorkers()
	minShard int64 // size-aware cutover; see parallel.Config.MinShardBytes
}

// WithWorkers returns a copy of c that runs the predict–quantize wavefront
// and the Huffman stage on a pool of the given size. 1 forces serial
// execution; 0 restores the default (GOMAXPROCS). Output is byte-identical
// at every worker count.
func (c *Codec) WithWorkers(workers int) compress.Codec {
	cp := *c
	cp.workers = workers
	return &cp
}

// WithParallel returns a copy of c bound to a full parallel config: the
// worker budget plus the size-aware cutover threshold. The zero config
// restores all defaults. Implements compress.ParallelTunable.
func (c *Codec) WithParallel(cfg parallel.Config) compress.Codec {
	cp := *c
	cp.workers = cfg.Workers
	cp.minShard = cfg.MinShardBytes
	return &cp
}

// workerCount resolves the effective pool size for an input of totalBytes
// (8 bytes per sample), applying the size-aware cutover so small fields
// never pay wavefront and shard-merge overhead they cannot amortize.
func (c *Codec) workerCount(totalBytes int64) int {
	return parallel.Config{Workers: c.workers, MinShardBytes: c.minShard}.WorkersFor(totalBytes)
}

// New returns a codec with the given mode and error bound.
func New(mode Mode, bound float64) (*Codec, error) {
	if bound <= 0 || math.IsNaN(bound) || math.IsInf(bound, 0) {
		return nil, fmt.Errorf("sz: invalid error bound %v", bound)
	}
	if mode > PointwiseRel {
		return nil, fmt.Errorf("sz: unknown mode %d", mode)
	}
	return &Codec{mode: mode, bound: bound}, nil
}

// MustNew is New but panics on invalid arguments; for use in tables.
func MustNew(mode Mode, bound float64) *Codec {
	c, err := New(mode, bound)
	if err != nil {
		panic(err)
	}
	return c
}

// NewCurveFit returns a codec with SZ 1.4's adaptive curve-fitting
// prediction for 1-D data: at each point the preceding-neighbour, linear,
// and quadratic extrapolations compete, and the one that best predicted the
// previous point (a hindsight rule the decoder can replay without side
// information) is used. Multi-dimensional data keeps the Lorenzo predictor.
func NewCurveFit(mode Mode, bound float64) (*Codec, error) {
	c, err := New(mode, bound)
	if err != nil {
		return nil, err
	}
	c.curveFit = true
	return c, nil
}

// MustNewCurveFit is NewCurveFit but panics on invalid arguments.
func MustNewCurveFit(mode Mode, bound float64) *Codec {
	c, err := NewCurveFit(mode, bound)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements compress.Codec.
func (c *Codec) Name() string {
	if c.curveFit {
		return fmt.Sprintf("sz(%s=%.0e,cf)", c.mode, c.bound)
	}
	return fmt.Sprintf("sz(%s=%.0e)", c.mode, c.bound)
}

// Lossless implements compress.Codec.
func (c *Codec) Lossless() bool { return false }

// Mode returns the configured error-bound mode.
func (c *Codec) Mode() Mode { return c.mode }

// Bound returns the configured error bound.
func (c *Codec) Bound() float64 { return c.bound }

// effectiveBound resolves the absolute quantization bound for f: the
// configured bound in Abs mode, bound × (max − min) in value-range mode.
func (c *Codec) effectiveBound(f *grid.Field) float64 {
	eb := c.bound
	if c.mode == ValueRangeRel {
		lo, hi := f.MinMax()
		eb = c.bound * (hi - lo)
		if eb == 0 { // constant field: any tiny bound works
			eb = math.SmallestNonzeroFloat64 * 1e10
		}
	}
	return eb
}

// AbsErrorBound implements compress.ErrorBounded. Pointwise-relative mode
// has no single absolute bound, so it reports ok == false.
func (c *Codec) AbsErrorBound(f *grid.Field) (float64, bool) {
	if c.mode == PointwiseRel {
		return 0, false
	}
	return c.effectiveBound(f), true
}

// hasNaNOrInf scans for unsupported values, sharding across the pool for
// large inputs. The answer is a pure predicate, so scan order is free.
func hasNaNOrInf(data []float64, workers int) bool {
	if workers <= 1 || len(data) < minWavefrontPoints {
		for _, v := range data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		return false
	}
	shards := parallel.Shards(workers, len(data))
	found := make([]bool, shards)
	parallel.ForShard(workers, len(data), func(sh, lo, hi int) {
		for _, v := range data[lo:hi] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				found[sh] = true
				return
			}
		}
	})
	for _, f := range found {
		if f {
			return true
		}
	}
	return false
}

// lorenzoPredict predicts point i of data given dims, using only indices
// < i (already decoded). Out-of-range neighbours contribute zero, as in SZ.
func lorenzoPredict(d []float64, dims []int, idx int) float64 {
	switch len(dims) {
	case 1:
		if idx == 0 {
			return 0
		}
		return d[idx-1]
	case 2:
		nx := dims[1]
		i := idx % nx
		j := idx / nx
		var a, b, ab float64
		if i > 0 {
			a = d[idx-1]
		}
		if j > 0 {
			b = d[idx-nx]
		}
		if i > 0 && j > 0 {
			ab = d[idx-nx-1]
		}
		return a + b - ab
	default: // 3-D Lorenzo: 7 neighbours of the unit cube corner.
		nx := dims[2]
		ny := dims[1]
		i := idx % nx
		j := (idx / nx) % ny
		k := idx / (nx * ny)
		var f100, f010, f001, f110, f101, f011, f111 float64
		if i > 0 {
			f100 = d[idx-1]
		}
		if j > 0 {
			f010 = d[idx-nx]
		}
		if k > 0 {
			f001 = d[idx-nx*ny]
		}
		if i > 0 && j > 0 {
			f110 = d[idx-nx-1]
		}
		if i > 0 && k > 0 {
			f101 = d[idx-nx*ny-1]
		}
		if j > 0 && k > 0 {
			f011 = d[idx-nx*ny-nx]
		}
		if i > 0 && j > 0 && k > 0 {
			f111 = d[idx-nx*ny-nx-1]
		}
		return f100 + f010 + f001 - f110 - f101 - f011 + f111
	}
}

// predictor computes a point's prediction from already-decoded values.
type predictor func(d []float64, dims []int, idx int) float64

// curveFitPredict is SZ 1.4's adaptive 1-D prediction: candidates of order
// 1..3 compete; the winner is whichever would have predicted the PREVIOUS
// point best, a rule computable from decoded data alone so encoder and
// decoder always agree. Multi-dimensional data falls back to Lorenzo.
func curveFitPredict(d []float64, dims []int, idx int) float64 {
	if len(dims) != 1 || idx < 2 {
		return lorenzoPredict(d, dims, idx)
	}
	// Candidates for the current point.
	c1 := d[idx-1]
	c2 := 2*d[idx-1] - d[idx-2]
	c3 := c2
	if idx >= 3 {
		c3 = 3*d[idx-1] - 3*d[idx-2] + d[idx-3]
	}
	// Hindsight errors: how well would each have predicted d[idx-1]?
	e1 := math.Abs(d[idx-2] - d[idx-1])
	e2 := e1
	if idx >= 3 {
		e2 = math.Abs(2*d[idx-2] - d[idx-3] - d[idx-1])
	}
	e3 := e2
	if idx >= 4 {
		e3 = math.Abs(3*d[idx-2] - 3*d[idx-3] + d[idx-4] - d[idx-1])
	}
	switch {
	case e1 <= e2 && e1 <= e3:
		return c1
	case e2 <= e3:
		return c2
	default:
		return c3
	}
}

func (c *Codec) predictor() predictor {
	if c.curveFit {
		return curveFitPredict
	}
	return lorenzoPredict
}

// quantizePoint computes the quantization code for point idx and writes
// its reconstruction into decoded[idx]. All of the point's strictly-lower-
// index neighbours must already be reconstructed.
func quantizePoint(data, decoded []float64, dims []int, eb float64, pred4 predictor, idx int) int {
	v := data[idx]
	pred := pred4(decoded, dims, idx)
	diff := v - pred
	q := math.Round(diff / (2 * eb))
	if math.Abs(q) < radius && !math.IsNaN(q) {
		dec := pred + 2*eb*q
		// Guard against floating-point cancellation pushing the
		// reconstruction outside the bound.
		if math.Abs(dec-v) <= eb {
			decoded[idx] = dec
			return int(q) + radius
		}
	}
	decoded[idx] = v
	return unpredictable
}

// quantizeCore runs the predict–quantize loop with an absolute bound eb.
// It returns the quantization codes and the exactly stored values for
// misses. decoded is scratch of len(data) holding the on-the-fly
// reconstruction, which is also the decompressor's view (every entry is
// written before it is read, so arena-dirty scratch is fine). The codes
// slice is arena-backed: the caller owns it and must return it with
// parallel.PutInts once consumed.
//
// Multi-dimensional domains run the rank-specialized row kernels
// (kernels.go) — serially in raster order, or as a tiled wavefront
// (wavefront.go) sweeping the same rows. Every point sees identical
// operands either way, so codes, decoded, and the exact pool match the
// scalar per-point scan bit for bit. The adaptive curve-fit predictor is
// 1-D only and keeps the scalar loop; multi-D curve-fit streams use the
// Lorenzo kernels, exactly as curveFitPredict falls back to lorenzoPredict.
func quantizeCore(data []float64, dims []int, eb float64, decoded []float64, curveFit bool, workers int) (codes []int, exact []float64) {
	codes = parallel.Ints(len(data))
	switch {
	case len(dims) == 1 && curveFit:
		for idx := range data {
			codes[idx] = quantizePoint(data, decoded, dims, eb, curveFitPredict, idx)
		}
	case len(dims) == 1:
		quantizeRow1(data, decoded, codes, eb)
	default:
		if !wavefrontRows(dims, workers, func(k, j, x0, x1 int) {
			quantizeRows(data, decoded, codes, dims, eb, k, j, x0, x1)
		}) {
			serialRows(dims, func(k, j, x0, x1 int) {
				quantizeRows(data, decoded, codes, dims, eb, k, j, x0, x1)
			})
		}
	}
	// Collect misses in raster order — the serial pool order.
	for idx, code := range codes {
		if code == unpredictable {
			exact = append(exact, data[idx])
		}
	}
	return codes, exact
}

// dequantizeCore reverses quantizeCore. A raster pre-pass validates every
// code and places the exact values in serial pool order (reproducing the
// scalar error and pool-consumption order); misses are then fixed points
// of the recurrence, so the row kernels — serial or wavefront — only apply
// the prediction to the remaining points.
func dequantizeCore(codes []int, dims []int, eb float64, exact []float64, curveFit bool, workers int) ([]float64, error) {
	out := make([]float64, len(codes))
	e := 0
	for idx, code := range codes {
		if code == unpredictable {
			if e >= len(exact) {
				return nil, fmt.Errorf("sz: exact-value pool exhausted: %w", compress.ErrCorrupt)
			}
			out[idx] = exact[e]
			e++
			continue
		}
		if code < 0 || code > unpredictable {
			return nil, fmt.Errorf("sz: invalid quantization code %d: %w", code, compress.ErrCorrupt)
		}
	}
	if e != len(exact) {
		return nil, fmt.Errorf("sz: unconsumed exact values: %w", compress.ErrCorrupt)
	}
	switch {
	case len(dims) == 1 && curveFit:
		for idx, code := range codes {
			if code == unpredictable {
				continue
			}
			pred := curveFitPredict(out, dims, idx)
			out[idx] = pred + 2*eb*float64(code-radius)
		}
	case len(dims) == 1:
		dequantRow1(out, codes, eb)
	default:
		if !wavefrontRows(dims, workers, func(k, j, x0, x1 int) {
			dequantRows(out, codes, dims, eb, k, j, x0, x1)
		}) {
			serialRows(dims, func(k, j, x0, x1 int) {
				dequantRows(out, codes, dims, eb, k, j, x0, x1)
			})
		}
	}
	return out, nil
}

// payload is the serialised pre-flate content.
//
//	uvarint exactCount | exact float64s | huffman(codes)
func buildPayload(codes []int, exact []float64, workers int) []byte {
	enc := encodeCodes(codes, workers)
	b := make([]byte, 0, 10+8*len(exact)+len(enc))
	b = binary.AppendUvarint(b, uint64(len(exact)))
	for _, v := range exact {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return append(b, enc...)
}

func parsePayload(b []byte, n int) (codes []int, exact []float64, err error) {
	cnt, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("sz: truncated payload: %w", compress.ErrTruncated)
	}
	pos := sz
	if cnt > uint64(n) {
		return nil, nil, fmt.Errorf("sz: exact count %d exceeds points %d: %w", cnt, n, compress.ErrCorrupt)
	}
	if len(b)-pos < int(cnt)*8 {
		return nil, nil, fmt.Errorf("sz: truncated exact values: %w", compress.ErrTruncated)
	}
	if err := compress.CheckedAlloc("sz: exact values", cnt, uint64(len(b)-pos)/8, 8); err != nil {
		return nil, nil, err
	}
	exact = make([]float64, cnt)
	for i := range exact {
		exact[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))
		pos += 8
	}
	codes, err = decodeCodes(b[pos:], n)
	if err != nil {
		return nil, nil, err
	}
	return codes, exact, nil
}

// Compress implements compress.Codec.
func (c *Codec) Compress(f *grid.Field) ([]byte, error) {
	return c.CompressCtx(context.Background(), f)
}

// CompressCtx implements compress.CtxCodec: identical stream to Compress,
// with the stage spans parented onto the span carried by ctx.
func (c *Codec) CompressCtx(ctx context.Context, f *grid.Field) ([]byte, error) {
	ctx, sp := trace.Start(ctx, "sz.compress")
	defer sp.End()
	workers := c.workerCount(8 * int64(f.Len()))
	if hasNaNOrInf(f.Data, workers) {
		err := errors.New("sz: NaN/Inf not supported")
		sp.SetError(err)
		return nil, err
	}
	hdr := compress.EncodeDimsHeader(f.Dims)
	hdr = append(hdr, byte(c.mode))
	var flags byte
	if c.curveFit {
		flags |= flagCurveFit
	}
	hdr = append(hdr, flags)
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(c.bound))

	var raw []byte
	switch c.mode {
	case Abs, ValueRangeRel:
		eb := c.effectiveBound(f)
		hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(eb))
		// Arena scratch: every entry of decoded and codes is written before
		// it is read, so dirty slices are safe.
		decoded := parallel.Floats(f.Len())
		_, qs := trace.Start(ctx, "sz.quantize")
		codes, exact := quantizeCore(f.Data, f.Dims, eb, decoded, c.curveFit, workers)
		qs.AddItems(int64(len(codes)))
		qs.End()
		if sp != nil {
			obsBinHits.Add(int64(len(codes) - len(exact)))
			obsUnpredictable.Add(int64(len(exact)))
		}
		if invariant.Enabled {
			// Predict→quantize boundary: the on-the-fly reconstruction (the
			// decoder's exact view) must honour the pointwise bound, and
			// every quantization code must be in the coder's alphabet.
			invariant.ErrorBound(f.Data, decoded, eb, "sz: predict-quantize")
			for _, q := range codes {
				invariant.InRange(q, 0, unpredictable+1, "sz: quantization code")
			}
		}
		_, hs := trace.Start(ctx, "sz.huffman")
		raw = buildPayload(codes, exact, workers)
		hs.SetBytes(int64(8*len(codes)), int64(len(raw)))
		hs.End()
		parallel.PutInts(codes)
		parallel.PutFloats(decoded)

	case PointwiseRel:
		// Log-domain transform: bounding |log2 x - log2 x'| <= eb' bounds
		// the pointwise relative error by 2^eb' - 1 >= Bound.
		ebLog := math.Log2(1+c.bound) / 2 // halved for symmetric headroom
		hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(ebLog))
		// Arena scratch: signs is or-ed into so it must start zeroed; logs
		// and decoded are fully written before being read.
		signs := parallel.Bytes((f.Len() + 7) / 8)
		for i := range signs {
			signs[i] = 0
		}
		logs := parallel.Floats(f.Len())
		var exactZero []int
		for i, v := range f.Data {
			switch {
			case v == 0:
				exactZero = append(exactZero, i)
				logs[i] = 0
			case v < 0:
				signs[i/8] |= 1 << uint(i%8)
				logs[i] = math.Log2(-v)
			default:
				logs[i] = math.Log2(v)
			}
		}
		decoded := parallel.Floats(f.Len())
		_, qs := trace.Start(ctx, "sz.quantize")
		codes, exact := quantizeCore(logs, f.Dims, ebLog, decoded, c.curveFit, workers)
		qs.AddItems(int64(len(codes)))
		qs.End()
		if sp != nil {
			obsBinHits.Add(int64(len(codes) - len(exact)))
			obsUnpredictable.Add(int64(len(exact)))
		}
		if invariant.Enabled {
			// Log-domain quantize boundary: bounding |log2 x − log2 x′|
			// by ebLog is what bounds the relative error by 2^ebLog − 1.
			invariant.ErrorBound(logs, decoded, ebLog, "sz: log-quantize")
		}
		// Zero positions are re-marked as unpredictable-with-zero via a
		// dedicated list so the log path never sees them on decode.
		var zb []byte
		zb = binary.AppendUvarint(zb, uint64(len(exactZero)))
		prev := 0
		for _, z := range exactZero {
			zb = binary.AppendUvarint(zb, uint64(z-prev))
			prev = z
		}
		raw = append(zb, signs...)
		_, hs := trace.Start(ctx, "sz.huffman")
		raw = append(raw, buildPayload(codes, exact, workers)...)
		hs.SetBytes(int64(8*len(codes)), int64(len(raw)))
		hs.End()
		parallel.PutInts(codes)
		parallel.PutFloats(decoded)
		parallel.PutFloats(logs)
		parallel.PutBytes(signs)
	}

	_, fs := trace.Start(ctx, "sz.flate")
	body, err := compress.FlateBytes(raw, 6)
	fs.SetBytes(int64(len(raw)), int64(len(body)))
	fs.SetError(err)
	fs.End()
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	out := append(hdr, body...)
	sp.SetBytes(int64(8*f.Len()), int64(len(out)))
	return out, nil
}

// Decompress implements compress.Codec. Failures wrap the
// compress.ErrTruncated / compress.ErrCorrupt taxonomy.
func (c *Codec) Decompress(data []byte) (*grid.Field, error) {
	return c.DecompressCtx(context.Background(), data)
}

// DecompressCtx implements compress.CtxCodec.
func (c *Codec) DecompressCtx(ctx context.Context, data []byte) (*grid.Field, error) {
	ctx, sp := trace.Start(ctx, "sz.decompress")
	defer sp.End()
	f, err := c.decompress(ctx, data)
	if err != nil {
		err = compress.Classify(err)
		sp.SetError(err)
		return nil, err
	}
	sp.SetBytes(int64(len(data)), int64(8*f.Len()))
	return f, nil
}

func (c *Codec) decompress(ctx context.Context, data []byte) (*grid.Field, error) {
	dims, rest, err := compress.DecodeDimsHeader(data)
	if err != nil {
		return nil, err
	}
	if len(rest) < 1+1+8+8 {
		return nil, fmt.Errorf("sz: truncated header: %w", compress.ErrTruncated)
	}
	mode := Mode(rest[0])
	if mode > PointwiseRel {
		return nil, fmt.Errorf("sz: unknown mode %d in stream: %w", rest[0], compress.ErrHeader)
	}
	flags := rest[1]
	if flags&^flagCurveFit != 0 {
		return nil, fmt.Errorf("sz: unknown flags %#x in stream: %w", flags, compress.ErrHeader)
	}
	curveFit := flags&flagCurveFit != 0
	// rest[2:10] is the nominal bound (informational on decode).
	eb := math.Float64frombits(binary.LittleEndian.Uint64(rest[10:18]))
	if eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("sz: invalid effective bound %v: %w", eb, compress.ErrHeader)
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	// The dims are already parsed, so the inflated size is boundable up
	// front: worst case ~26 bytes/point (exact value + huffman code + zero
	// list) plus a bounded alphabet header. Anything larger is a bomb.
	_, is := trace.Start(ctx, "sz.inflate")
	raw, err := compress.InflateBytesCap(rest[18:], 32*int64(n)+(1<<20))
	is.SetBytes(int64(len(rest)-18), int64(len(raw)))
	is.SetError(err)
	is.End()
	if err != nil {
		return nil, err
	}

	// Every point costs at least one Huffman bit, so the claimed dims
	// cannot exceed the inflated payload's bit count.
	if err := compress.CheckedAlloc("sz: field", uint64(n), 8*uint64(len(raw))+64, 8); err != nil {
		return nil, err
	}

	switch mode {
	case Abs, ValueRangeRel:
		codes, exact, err := parsePayload(raw, n)
		if err != nil {
			return nil, err
		}
		_, ds := trace.Start(ctx, "sz.dequantize")
		vals, err := dequantizeCore(codes, dims, eb, exact, curveFit, c.workerCount(8*int64(n)))
		ds.AddItems(int64(len(codes)))
		ds.SetError(err)
		ds.End()
		if err != nil {
			return nil, err
		}
		invariant.SameLen(vals, codes, "sz: dequantize")
		return grid.FromData(vals, dims...)

	case PointwiseRel:
		pos := 0
		zcnt, sz := binary.Uvarint(raw)
		if sz <= 0 || zcnt > uint64(n) {
			return nil, fmt.Errorf("sz: bad zero list: %w", compress.ErrCorrupt)
		}
		pos += sz
		// Every zero-list entry costs at least one delta byte.
		if err := compress.CheckedAlloc("sz: zero list", zcnt, uint64(len(raw)-pos), 8); err != nil {
			return nil, err
		}
		zeros := make([]int, zcnt)
		prev := uint64(0)
		for i := range zeros {
			d, s := binary.Uvarint(raw[pos:])
			if s <= 0 {
				return nil, fmt.Errorf("sz: truncated zero list: %w", compress.ErrTruncated)
			}
			pos += s
			prev += d
			if prev >= uint64(n) {
				return nil, fmt.Errorf("sz: zero index out of range: %w", compress.ErrCorrupt)
			}
			zeros[i] = int(prev)
		}
		signBytes := (n + 7) / 8
		if len(raw)-pos < signBytes {
			return nil, fmt.Errorf("sz: truncated sign bitmap: %w", compress.ErrTruncated)
		}
		signs := raw[pos : pos+signBytes]
		pos += signBytes
		codes, exact, err := parsePayload(raw[pos:], n)
		if err != nil {
			return nil, err
		}
		_, ds := trace.Start(ctx, "sz.dequantize")
		logs, err := dequantizeCore(codes, dims, eb, exact, curveFit, c.workerCount(8*int64(n)))
		ds.AddItems(int64(len(codes)))
		ds.SetError(err)
		ds.End()
		if err != nil {
			return nil, err
		}
		vals := make([]float64, n)
		for i, lg := range logs {
			v := math.Exp2(lg)
			if signs[i/8]>>uint(i%8)&1 == 1 {
				v = -v
			}
			vals[i] = v
		}
		for _, z := range zeros {
			vals[z] = 0
		}
		return grid.FromData(vals, dims...)
	}
	return nil, fmt.Errorf("sz: unreachable mode %d: %w", mode, compress.ErrCorrupt)
}

// The codec is fully context-aware: plain Compress/Decompress delegate to
// the Ctx variants with a background context.
var _ compress.CtxCodec = (*Codec)(nil)

func init() {
	// Streams are self-describing (mode/bound come from the header), so the
	// constructor arguments only seed a receiver; the worker budget is the
	// one knob that matters on decode.
	compress.RegisterWorkersDecoder("sz", func(b []byte, workers int) (*grid.Field, error) {
		return MustNew(Abs, 1e-5).WithWorkers(workers).Decompress(b)
	})
	compress.RegisterCtxDecoder("sz", func(ctx context.Context, b []byte, workers int) (*grid.Field, error) {
		return compress.DecompressCtx(ctx, MustNew(Abs, 1e-5).WithWorkers(workers), b)
	})
}

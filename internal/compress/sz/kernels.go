package sz

import "math"

// This file holds the batched Lorenzo row kernels. The generic path
// (lorenzoPredict + quantizePoint) recovers (i, j, k) from a flat index
// with a div/mod per point and re-tests the boundary conditions per point;
// the kernels below are specialized per rank and per boundary case, so the
// interior loop — virtually every point — carries its counters and runs
// with no division and no predictor indirection.
//
// Bit-identity contract: every expression below reproduces the generic
// path's floating-point operations in the exact original order, with
// literal zeros standing in for out-of-range neighbours exactly where
// lorenzoPredict substituted zero values. Go does not fold x+0 for floats
// (the identity is false for -0), so the specialized and generic
// expressions compile to the same IEEE operation sequence.

// quantizeAt quantizes data[idx] against a prediction, writing the
// reconstruction and code. It is the body of quantizePoint after the
// predictor call, kept small enough to inline into the row loops.
func quantizeAt(data, decoded []float64, codes []int, eb, pred float64, idx int) {
	v := data[idx]
	diff := v - pred
	q := math.Round(diff / (2 * eb))
	if math.Abs(q) < radius && !math.IsNaN(q) {
		dec := pred + 2*eb*q
		if math.Abs(dec-v) <= eb {
			decoded[idx] = dec
			codes[idx] = int(q) + radius
			return
		}
	}
	decoded[idx] = v
	codes[idx] = unpredictable
}

// quantizeRow1 quantizes a whole rank-1 domain: pred is the previous
// reconstruction, zero at the origin.
func quantizeRow1(data, decoded []float64, codes []int, eb float64) {
	if len(data) == 0 {
		return
	}
	quantizeAt(data, decoded, codes, eb, 0, 0)
	for idx := 1; idx < len(data); idx++ {
		quantizeAt(data, decoded, codes, eb, decoded[idx-1], idx)
	}
}

// quantizeRow2 quantizes points [x0,x1) of row j of an nx-wide rank-2
// domain.
func quantizeRow2(data, decoded []float64, codes []int, eb float64, nx, j, x0, x1 int) {
	idx := j*nx + x0
	i := x0
	if j == 0 {
		if i == 0 {
			quantizeAt(data, decoded, codes, eb, 0+0-0, idx)
			i, idx = i+1, idx+1
		}
		for ; i < x1; i, idx = i+1, idx+1 {
			quantizeAt(data, decoded, codes, eb, decoded[idx-1]+0-0, idx)
		}
		return
	}
	if i == 0 {
		quantizeAt(data, decoded, codes, eb, 0+decoded[idx-nx]-0, idx)
		i, idx = i+1, idx+1
	}
	for ; i < x1; i, idx = i+1, idx+1 {
		quantizeAt(data, decoded, codes, eb, decoded[idx-1]+decoded[idx-nx]-decoded[idx-nx-1], idx)
	}
}

// quantizeRow3 quantizes points [x0,x1) of row (k, j) of a rank-3 domain
// with x-extent nx and plane stride nxny.
func quantizeRow3(data, decoded []float64, codes []int, eb float64, nx, nxny, j, k, x0, x1 int) {
	idx := k*nxny + j*nx + x0
	i := x0
	d := decoded
	switch {
	case k == 0 && j == 0:
		if i == 0 {
			quantizeAt(data, d, codes, eb, 0+0+0-0-0-0+0, idx)
			i, idx = i+1, idx+1
		}
		for ; i < x1; i, idx = i+1, idx+1 {
			quantizeAt(data, d, codes, eb, d[idx-1]+0+0-0-0-0+0, idx)
		}
	case k == 0:
		if i == 0 {
			quantizeAt(data, d, codes, eb, 0+d[idx-nx]+0-0-0-0+0, idx)
			i, idx = i+1, idx+1
		}
		for ; i < x1; i, idx = i+1, idx+1 {
			quantizeAt(data, d, codes, eb, d[idx-1]+d[idx-nx]+0-d[idx-nx-1]-0-0+0, idx)
		}
	case j == 0:
		if i == 0 {
			quantizeAt(data, d, codes, eb, 0+0+d[idx-nxny]-0-0-0+0, idx)
			i, idx = i+1, idx+1
		}
		for ; i < x1; i, idx = i+1, idx+1 {
			quantizeAt(data, d, codes, eb, d[idx-1]+0+d[idx-nxny]-0-d[idx-nxny-1]-0+0, idx)
		}
	default:
		if i == 0 {
			quantizeAt(data, d, codes, eb, 0+d[idx-nx]+d[idx-nxny]-0-0-d[idx-nxny-nx]+0, idx)
			i, idx = i+1, idx+1
		}
		for ; i < x1; i, idx = i+1, idx+1 {
			quantizeAt(data, d, codes, eb,
				d[idx-1]+d[idx-nx]+d[idx-nxny]-d[idx-nx-1]-d[idx-nxny-1]-d[idx-nxny-nx]+d[idx-nxny-nx-1], idx)
		}
	}
}

// quantizeRows dispatches a row range to the rank-specialized kernel.
// dims must be rank 2 or 3 (rank 1 uses quantizeRow1 directly).
func quantizeRows(data, decoded []float64, codes []int, dims []int, eb float64, k, j, x0, x1 int) {
	if len(dims) == 2 {
		quantizeRow2(data, decoded, codes, eb, dims[1], j, x0, x1)
		return
	}
	nx := dims[2]
	quantizeRow3(data, decoded, codes, eb, nx, dims[1]*nx, j, k, x0, x1)
}

// dequantRow1 reverses quantizeRow1: codes were validated and misses
// placed by the raster pre-pass, so the row only applies the recurrence.
func dequantRow1(out []float64, codes []int, eb float64) {
	if len(out) == 0 {
		return
	}
	if codes[0] != unpredictable {
		out[0] = 0 + 2*eb*float64(codes[0]-radius)
	}
	for idx := 1; idx < len(out); idx++ {
		if codes[idx] != unpredictable {
			out[idx] = out[idx-1] + 2*eb*float64(codes[idx]-radius)
		}
	}
}

// dequantWaveRow2 reverses quantizeRow2 for the wavefront path: codes were
// validated and misses placed by the raster pre-pass, so the row only
// applies the prediction recurrence, skipping miss positions.
func dequantWaveRow2(out []float64, codes []int, eb float64, nx, j, x0, x1 int) {
	idx := j*nx + x0
	i := x0
	if j == 0 {
		if i == 0 {
			if codes[idx] != unpredictable {
				out[idx] = (0 + 0 - 0) + 2*eb*float64(codes[idx]-radius)
			}
			i, idx = i+1, idx+1
		}
		for ; i < x1; i, idx = i+1, idx+1 {
			if codes[idx] != unpredictable {
				out[idx] = (out[idx-1] + 0 - 0) + 2*eb*float64(codes[idx]-radius)
			}
		}
		return
	}
	if i == 0 {
		if codes[idx] != unpredictable {
			out[idx] = (0 + out[idx-nx] - 0) + 2*eb*float64(codes[idx]-radius)
		}
		i, idx = i+1, idx+1
	}
	for ; i < x1; i, idx = i+1, idx+1 {
		if codes[idx] != unpredictable {
			out[idx] = (out[idx-1] + out[idx-nx] - out[idx-nx-1]) + 2*eb*float64(codes[idx]-radius)
		}
	}
}

// dequantWaveRow3 is dequantWaveRow2 for rank 3.
func dequantWaveRow3(out []float64, codes []int, eb float64, nx, nxny, j, k, x0, x1 int) {
	idx := k*nxny + j*nx + x0
	i := x0
	switch {
	case k == 0 && j == 0:
		if i == 0 {
			if codes[idx] != unpredictable {
				out[idx] = (0 + 0 + 0 - 0 - 0 - 0 + 0) + 2*eb*float64(codes[idx]-radius)
			}
			i, idx = i+1, idx+1
		}
		for ; i < x1; i, idx = i+1, idx+1 {
			if codes[idx] != unpredictable {
				out[idx] = (out[idx-1] + 0 + 0 - 0 - 0 - 0 + 0) + 2*eb*float64(codes[idx]-radius)
			}
		}
	case k == 0:
		if i == 0 {
			if codes[idx] != unpredictable {
				out[idx] = (0 + out[idx-nx] + 0 - 0 - 0 - 0 + 0) + 2*eb*float64(codes[idx]-radius)
			}
			i, idx = i+1, idx+1
		}
		for ; i < x1; i, idx = i+1, idx+1 {
			if codes[idx] != unpredictable {
				out[idx] = (out[idx-1] + out[idx-nx] + 0 - out[idx-nx-1] - 0 - 0 + 0) + 2*eb*float64(codes[idx]-radius)
			}
		}
	case j == 0:
		if i == 0 {
			if codes[idx] != unpredictable {
				out[idx] = (0 + 0 + out[idx-nxny] - 0 - 0 - 0 + 0) + 2*eb*float64(codes[idx]-radius)
			}
			i, idx = i+1, idx+1
		}
		for ; i < x1; i, idx = i+1, idx+1 {
			if codes[idx] != unpredictable {
				out[idx] = (out[idx-1] + 0 + out[idx-nxny] - 0 - out[idx-nxny-1] - 0 + 0) + 2*eb*float64(codes[idx]-radius)
			}
		}
	default:
		if i == 0 {
			if codes[idx] != unpredictable {
				out[idx] = (0 + out[idx-nx] + out[idx-nxny] - 0 - 0 - out[idx-nxny-nx] + 0) + 2*eb*float64(codes[idx]-radius)
			}
			i, idx = i+1, idx+1
		}
		for ; i < x1; i, idx = i+1, idx+1 {
			if codes[idx] != unpredictable {
				out[idx] = (out[idx-1] + out[idx-nx] + out[idx-nxny] -
					out[idx-nx-1] - out[idx-nxny-1] - out[idx-nxny-nx] + out[idx-nxny-nx-1]) + 2*eb*float64(codes[idx]-radius)
			}
		}
	}
}

// dequantRows dispatches a wavefront row range to the rank-specialized
// kernel. dims must be rank 2 or 3.
func dequantRows(out []float64, codes []int, dims []int, eb float64, k, j, x0, x1 int) {
	if len(dims) == 2 {
		dequantWaveRow2(out, codes, eb, dims[1], j, x0, x1)
		return
	}
	nx := dims[2]
	dequantWaveRow3(out, codes, eb, nx, dims[1]*nx, j, k, x0, x1)
}

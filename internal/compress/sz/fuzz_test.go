package sz

import (
	"math"
	"testing"

	"lrm/internal/grid"
)

// FuzzDecompress asserts the sz stream parser never panics on arbitrary
// bytes — on the serial path AND on the worker pool path, which must agree
// bitwise whenever both succeed.
func FuzzDecompress(f *testing.F) {
	field := grid.New(5, 9)
	for i := range field.Data {
		field.Data[i] = float64(i%7) * 1.25
	}
	for _, c := range []*Codec{
		MustNew(Abs, 1e-3),
		MustNew(ValueRangeRel, 1e-4),
		MustNew(PointwiseRel, 1e-3),
		MustNewCurveFit(Abs, 1e-3),
	} {
		enc, err := c.Compress(field)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c := MustNew(Abs, 1e-3)
		out, err := c.Decompress(data)
		if err == nil && out != nil {
			if out.Len() == 0 || out.Len() > 1<<24 {
				t.Fatalf("implausible decode length %d", out.Len())
			}
		}
		outP, errP := c.WithWorkers(8).Decompress(data)
		if (err == nil) != (errP == nil) {
			t.Fatalf("serial/parallel decode disagree: %v vs %v", err, errP)
		}
		if err == nil {
			for i := range out.Data {
				if math.Float64bits(out.Data[i]) != math.Float64bits(outP.Data[i]) {
					t.Fatalf("serial/parallel decode differ bitwise at %d", i)
				}
			}
		}
	})
}

package sz

import (
	"testing"

	"lrm/internal/grid"
)

// FuzzDecompress asserts the sz stream parser never panics on arbitrary
// bytes.
func FuzzDecompress(f *testing.F) {
	field := grid.New(5, 9)
	for i := range field.Data {
		field.Data[i] = float64(i%7) * 1.25
	}
	for _, c := range []*Codec{
		MustNew(Abs, 1e-3),
		MustNew(ValueRangeRel, 1e-4),
		MustNew(PointwiseRel, 1e-3),
		MustNewCurveFit(Abs, 1e-3),
	} {
		enc, err := c.Compress(field)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c := MustNew(Abs, 1e-3)
		if out, err := c.Decompress(data); err == nil && out != nil {
			if out.Len() == 0 || out.Len() > 1<<24 {
				t.Fatalf("implausible decode length %d", out.Len())
			}
		}
	})
}

package compress

import (
	"fmt"
	"sort"
	"sync"

	"lrm/internal/grid"
)

// Decoder decompresses one self-describing stream of a codec family.
// Streams carry their own configuration, so a single decoder per family
// suffices regardless of how the encoder was configured.
type Decoder func([]byte) (*grid.Field, error)

// WorkersDecoder is a Decoder with an explicit decode-side worker budget.
// workers <= 0 selects the codec's default pool size. Implementations must
// return identical fields at every worker count (the same contract as
// Parallelizable on the compress side).
type WorkersDecoder func(b []byte, workers int) (*grid.Field, error)

var (
	registryMu      sync.RWMutex
	decoders        = map[string]Decoder{}
	workersDecoders = map[string]WorkersDecoder{}
)

// RegisterDecoder installs the decoder for a codec family (the part of a
// codec name before any '('). Codec packages call this from init, so
// importing a codec package is what makes its streams decodable.
// Registering a family twice panics: it would silently shadow a codec.
func RegisterDecoder(family string, d Decoder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := decoders[family]; dup {
		panic(fmt.Sprintf("compress: decoder %q registered twice", family))
	}
	decoders[family] = d
}

// RegisterWorkersDecoder installs a worker-aware decoder for a family whose
// decode path runs on a bounded pool, and derives the family's plain
// Decoder from it (default budget). Codec packages with parallel decoders
// call this INSTEAD of RegisterDecoder.
func RegisterWorkersDecoder(family string, d WorkersDecoder) {
	RegisterDecoder(family, func(b []byte) (*grid.Field, error) { return d(b, 0) })
	registryMu.Lock()
	defer registryMu.Unlock()
	workersDecoders[family] = d
}

// DecoderFor returns the decoder registered for a codec family.
func DecoderFor(family string) (Decoder, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	d, ok := decoders[family]
	if !ok {
		return nil, fmt.Errorf("compress: no decoder registered for family %q (have %v): %w",
			family, familiesLocked(), ErrCorrupt)
	}
	return d, nil
}

// DecoderForWorkers returns a decoder bound to the given worker budget.
// Families without a registered worker-aware decoder (serial decode paths)
// fall back to their plain decoder, which trivially honours any budget.
func DecoderForWorkers(family string, workers int) (Decoder, error) {
	registryMu.RLock()
	wd, ok := workersDecoders[family]
	registryMu.RUnlock()
	if ok {
		return func(b []byte) (*grid.Field, error) { return wd(b, workers) }, nil
	}
	return DecoderFor(family)
}

// Families lists the registered codec families, sorted.
func Families() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return familiesLocked()
}

// familiesLocked is Families for callers already holding registryMu.
func familiesLocked() []string {
	out := make([]string, 0, len(decoders))
	for f := range decoders {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// CodecFamily strips the parameterisation from a codec name:
// "zfp(p=16)" -> "zfp".
func CodecFamily(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '(' {
			return name[:i]
		}
	}
	return name
}

func init() {
	RegisterDecoder("flate", NewFlate(6).Decompress)
}

package compress

import (
	"fmt"
	"sort"
	"sync"

	"lrm/internal/grid"
)

// Decoder decompresses one self-describing stream of a codec family.
// Streams carry their own configuration, so a single decoder per family
// suffices regardless of how the encoder was configured.
type Decoder func([]byte) (*grid.Field, error)

var (
	registryMu sync.RWMutex
	decoders   = map[string]Decoder{}
)

// RegisterDecoder installs the decoder for a codec family (the part of a
// codec name before any '('). Codec packages call this from init, so
// importing a codec package is what makes its streams decodable.
// Registering a family twice panics: it would silently shadow a codec.
func RegisterDecoder(family string, d Decoder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := decoders[family]; dup {
		panic(fmt.Sprintf("compress: decoder %q registered twice", family))
	}
	decoders[family] = d
}

// DecoderFor returns the decoder registered for a codec family.
func DecoderFor(family string) (Decoder, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	d, ok := decoders[family]
	if !ok {
		return nil, fmt.Errorf("compress: no decoder registered for family %q (have %v)", family, Families())
	}
	return d, nil
}

// Families lists the registered codec families, sorted.
func Families() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(decoders))
	for f := range decoders {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// CodecFamily strips the parameterisation from a codec name:
// "zfp(p=16)" -> "zfp".
func CodecFamily(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '(' {
			return name[:i]
		}
	}
	return name
}

func init() {
	RegisterDecoder("flate", NewFlate(6).Decompress)
}

package compress

import (
	"context"
	"errors"
	"fmt"
	"io"

	"lrm/internal/bitstream"
)

// Decode-error taxonomy. Every decode path in this repository — the three
// codecs, the huffman stage, and the core containers — returns errors that
// wrap one of these sentinels, so callers can dispatch on the failure class
// with errors.Is regardless of which layer detected the problem:
//
//	ErrTruncated — the stream ends before the structure it promises.
//	ErrCorrupt   — the stream is structurally invalid (bad magic, CRC
//	               mismatch, implausible header claims, invalid codes).
//	ErrHeader    — a malformed header specifically; a sub-class of
//	               ErrCorrupt, so errors.Is(err, ErrCorrupt) also holds.
//
// The split matters operationally: a truncated archive is usually a short
// write (retry the transfer), while a corrupt one is bit rot or a hostile
// stream (quarantine it).
//
// The contract is machine-enforced: the errtaxonomy analyzer
// (cmd/lrmlint) flags any decode-path return whose error provably cannot
// wrap one of these sentinels. Wrap with %w or launder through Classify.
var (
	ErrTruncated = errors.New("compress: truncated input")
	ErrCorrupt   = errors.New("compress: corrupt input")
	ErrHeader    = fmt.Errorf("%w (invalid header)", ErrCorrupt)
)

// ErrCanceled classifies failures caused by the caller's context — the
// client hung up or the deadline passed — rather than by the stream. It is
// deliberately outside the corrupt/truncated split: a canceled decode says
// nothing about the archive, so callers must not quarantine or retry the
// data on its account. Errors carrying this sentinel always also satisfy
// errors.Is against the originating context.Canceled or
// context.DeadlineExceeded.
var ErrCanceled = errors.New("compress: operation canceled")

// Classify wraps err into the decode-error taxonomy. Errors that already
// carry a sentinel pass through unchanged; end-of-input conditions map to
// ErrTruncated; everything else maps to ErrCorrupt. Decode paths call this
// at their boundary as a safety net so no error escapes unclassified.
func Classify(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrCanceled) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) || errors.Is(err, bitstream.ErrOutOfBits) {
		return fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	return fmt.Errorf("%w: %w", ErrCorrupt, err)
}

package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lrm/internal/grid"
)

func TestDimsHeaderRoundTrip(t *testing.T) {
	for _, dims := range [][]int{{7}, {3, 4}, {5, 6, 7}, {1 << 20}} {
		hdr := EncodeDimsHeader(dims)
		got, rest, err := DecodeDimsHeader(append(hdr, 0xAB))
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 1 || rest[0] != 0xAB {
			t.Fatal("rest not preserved")
		}
		if len(got) != len(dims) {
			t.Fatalf("dims = %v", got)
		}
		for i := range dims {
			if got[i] != dims[i] {
				t.Fatalf("dims = %v, want %v", got, dims)
			}
		}
	}
}

func TestDimsHeaderGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},    // rank 0
		{4},    // rank 4
		{2, 5}, // missing second extent
		{1, 0}, // zero extent
	}
	for i, b := range cases {
		if _, _, err := DecodeDimsHeader(b); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestFlateCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := grid.New(6, 7, 8)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	c := NewFlate(6)
	if !c.Lossless() {
		t.Fatal("flate must be lossless")
	}
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Float64bits(dec.Data[i]) != math.Float64bits(f.Data[i]) {
			t.Fatalf("flate not bit-exact at %d", i)
		}
	}
}

func TestFlateCompressesRepetitiveData(t *testing.T) {
	f := grid.New(4096)
	for i := range f.Data {
		f.Data[i] = float64(i % 4)
	}
	c := NewFlate(9)
	enc, err := c.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	if r := Ratio(f, enc); r < 10 {
		t.Fatalf("repetitive ratio = %.1f", r)
	}
}

func TestFlateDecompressGarbage(t *testing.T) {
	c := NewFlate(0)
	for i, b := range [][]byte{nil, {}, {1, 4, 0xff, 0xff, 0xff}} {
		if _, err := c.Decompress(b); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestFlateName(t *testing.T) {
	if NewFlate(0).Name() != "flate(l=-1)" {
		t.Fatalf("name = %q", NewFlate(0).Name())
	}
	if NewFlate(9).Name() != "flate(l=9)" {
		t.Fatalf("name = %q", NewFlate(9).Name())
	}
}

func TestRatios(t *testing.T) {
	f := grid.New(100)
	if Ratio(f, nil) != 0 {
		t.Fatal("empty compressed should give 0")
	}
	if Ratio(f, make([]byte, 100)) != 8 {
		t.Fatal("ratio arithmetic broken")
	}
	if RatioBytes(100, 0) != 0 || RatioBytes(100, 25) != 4 {
		t.Fatal("RatioBytes broken")
	}
}

func TestFlateBytesQuick(t *testing.T) {
	check := func(b []byte) bool {
		enc, err := FlateBytes(b, 6)
		if err != nil {
			return false
		}
		dec, err := InflateBytes(enc)
		if err != nil {
			return false
		}
		if len(dec) != len(b) {
			return false
		}
		for i := range b {
			if dec[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	fams := Families()
	// flate registers in this package; codec families register when their
	// packages are imported (not from this test's import graph).
	found := false
	for _, f := range fams {
		if f == "flate" {
			found = true
		}
	}
	if !found {
		t.Fatalf("flate missing from %v", fams)
	}
	if _, err := DecoderFor("flate"); err != nil {
		t.Fatal(err)
	}
	if _, err := DecoderFor("martian"); err == nil {
		t.Fatal("expected unknown-family error")
	}
	if CodecFamily("zfp(p=16)") != "zfp" || CodecFamily("flate") != "flate" {
		t.Fatal("CodecFamily broken")
	}
	// Duplicate registration must panic (silent shadowing is a bug).
	defer func() {
		if recover() == nil {
			t.Fatal("expected duplicate-registration panic")
		}
	}()
	RegisterDecoder("flate", nil)
}

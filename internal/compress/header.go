package compress

import (
	"encoding/binary"
	"fmt"
)

// MaxElements caps the total element count any stream may claim. Corrupt
// or hostile headers otherwise drive multi-gigabyte allocations before the
// first payload byte is validated.
const MaxElements = 1 << 28

// EncodeDimsHeader serialises a rank (1 byte) followed by uvarint extents.
// All codecs in this repository lead their streams with it.
func EncodeDimsHeader(dims []int) []byte {
	b := []byte{byte(len(dims))}
	for _, d := range dims {
		b = binary.AppendUvarint(b, uint64(d))
	}
	return b
}

// DecodeDimsHeader parses EncodeDimsHeader output and returns the remaining
// bytes.
func DecodeDimsHeader(b []byte) (dims []int, rest []byte, err error) {
	if len(b) < 1 {
		return nil, nil, fmt.Errorf("compress: empty stream: %w", ErrTruncated)
	}
	rank := int(b[0])
	if rank < 1 || rank > 3 {
		return nil, nil, fmt.Errorf("compress: bad rank %d: %w", rank, ErrHeader)
	}
	pos := 1
	dims = make([]int, rank)
	total := uint64(1)
	for i := range dims {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return nil, nil, fmt.Errorf("compress: truncated dims header: %w", ErrTruncated)
		}
		if v == 0 || v > MaxElements {
			return nil, nil, fmt.Errorf("compress: implausible extent %d: %w", v, ErrHeader)
		}
		total *= v
		if total > MaxElements {
			return nil, nil, fmt.Errorf("compress: field of %d+ elements exceeds MaxElements: %w", total, ErrHeader)
		}
		dims[i] = int(v)
		pos += n
	}
	return dims, b[pos:], nil
}

package linalg

import (
	"errors"
	"math"
	"sort"
)

// SVDResult holds a thin singular value decomposition A = U · diag(S) · Vᵀ,
// with U of shape m×r, S of length r, and V of shape n×r, where
// r = min(m, n). Singular values are non-negative and descending.
type SVDResult struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVD computes a thin singular value decomposition of a using the one-sided
// Jacobi method (Hestenes): columns of a working copy of A are repeatedly
// orthogonalised by plane rotations; at convergence the column norms are the
// singular values, the normalised columns are U, and the accumulated
// rotations give V.
//
// For m < n the decomposition of Aᵀ is computed and the factors swapped.
func SVD(a *Matrix) (*SVDResult, error) {
	if a.Rows == 0 || a.Cols == 0 {
		return nil, errors.New("linalg: SVD of empty matrix")
	}
	if a.Rows < a.Cols {
		r, err := SVD(a.T())
		if err != nil {
			return nil, err
		}
		return &SVDResult{U: r.V, S: r.S, V: r.U}, nil
	}

	m, n := a.Rows, a.Cols
	w := a.Clone()
	v := Identity(n)

	// Column-major access helpers over the row-major store.
	colDot := func(p, q int) float64 {
		s := 0.0
		for i := 0; i < m; i++ {
			s += w.Data[i*n+p] * w.Data[i*n+q]
		}
		return s
	}

	scale := a.FrobeniusNorm()
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := colDot(p, p)
				beta := colDot(q, q)
				gamma := colDot(p, q)
				if math.Abs(gamma) <= 1e-15*math.Sqrt(alpha*beta)+1e-300 {
					continue
				}
				rotated = true
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				for i := 0; i < m; i++ {
					wp := w.Data[i*n+p]
					wq := w.Data[i*n+q]
					w.Data[i*n+p] = c*wp - s*wq
					w.Data[i*n+q] = s*wp + c*wq
				}
				for i := 0; i < n; i++ {
					vp := v.Data[i*n+p]
					vq := v.Data[i*n+q]
					v.Data[i*n+p] = c*vp - s*vq
					v.Data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Extract singular values and left vectors.
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		sv[j] = math.Sqrt(colDot(j, j))
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return sv[order[i]] > sv[order[j]] })

	u := NewMatrix(m, n)
	vOut := NewMatrix(n, n)
	sOut := make([]float64, n)
	for newJ, oldJ := range order {
		sOut[newJ] = sv[oldJ]
		if sv[oldJ] > 1e-300*(scale+1) && sv[oldJ] > 0 {
			inv := 1 / sv[oldJ]
			for i := 0; i < m; i++ {
				u.Data[i*n+newJ] = w.Data[i*n+oldJ] * inv
			}
		}
		for i := 0; i < n; i++ {
			vOut.Data[i*n+newJ] = v.Data[i*n+oldJ]
		}
	}
	return &SVDResult{U: u, S: sOut, V: vOut}, nil
}

// Truncate returns the rank-k factors (U m×k, S k, V n×k) of r.
// k is clamped to the available rank.
func (r *SVDResult) Truncate(k int) (*Matrix, []float64, *Matrix) {
	if k > len(r.S) {
		k = len(r.S)
	}
	if k < 1 {
		k = 1
	}
	uk := NewMatrix(r.U.Rows, k)
	vk := NewMatrix(r.V.Rows, k)
	for i := 0; i < r.U.Rows; i++ {
		for j := 0; j < k; j++ {
			uk.Set(i, j, r.U.At(i, j))
		}
	}
	for i := 0; i < r.V.Rows; i++ {
		for j := 0; j < k; j++ {
			vk.Set(i, j, r.V.At(i, j))
		}
	}
	return uk, append([]float64(nil), r.S[:k]...), vk
}

// Reconstruct returns U·diag(S)·Vᵀ from possibly truncated factors.
func Reconstruct(u *Matrix, s []float64, v *Matrix) (*Matrix, error) {
	if u.Cols != len(s) || v.Cols != len(s) {
		return nil, errors.New("linalg: factor shape mismatch")
	}
	out := NewMatrix(u.Rows, v.Rows)
	for i := 0; i < u.Rows; i++ {
		for k := 0; k < len(s); k++ {
			f := u.At(i, k) * s[k]
			if f == 0 {
				continue
			}
			for j := 0; j < v.Rows; j++ {
				out.Data[i*out.Cols+j] += f * v.At(j, k)
			}
		}
	}
	return out, nil
}

// RankForEnergy returns the smallest k such that the first k values of the
// (descending, non-negative) spectrum carry at least `fraction` of the total
// sum. This is the paper's 95 % rule for choosing the number of retained
// components. It returns at least 1.
func RankForEnergy(spectrum []float64, fraction float64) int {
	total := 0.0
	for _, s := range spectrum {
		if s > 0 {
			total += s
		}
	}
	if total == 0 {
		return 1
	}
	acc := 0.0
	for i, s := range spectrum {
		if s > 0 {
			acc += s
		}
		if acc/total >= fraction {
			return i + 1
		}
	}
	return len(spectrum)
}

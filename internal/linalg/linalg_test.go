package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone shares storage")
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Fatal("transpose broken")
	}
	if _, err := MatrixFromData(make([]float64, 5), 2, 3); err == nil {
		t.Fatal("expected shape error")
	}
	col := m.Col(2)
	if len(col) != 2 || col[1] != 5 {
		t.Fatalf("Col = %v", col)
	}
}

func TestMulAgainstHand(t *testing.T) {
	a, _ := MatrixFromData([]float64{1, 2, 3, 4}, 2, 2)
	b, _ := MatrixFromData([]float64{5, 6, 7, 8}, 2, 2)
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("Mul[%d]=%v, want %v", i, c.Data[i], v)
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestMulIdentityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(8)
		cols := 1 + r.Intn(8)
		m := randomMatrix(rng, rows, cols)
		p, err := m.Mul(Identity(cols))
		if err != nil {
			return false
		}
		return p.MaxAbsDiff(m) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSubAndNorm(t *testing.T) {
	a, _ := MatrixFromData([]float64{3, 4}, 1, 2)
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("norm = %v, want 5", got)
	}
	d, err := a.Sub(a)
	if err != nil {
		t.Fatal(err)
	}
	if d.FrobeniusNorm() != 0 {
		t.Fatal("a-a != 0")
	}
	if _, err := a.Sub(NewMatrix(2, 2)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestColumnMeansAndCenter(t *testing.T) {
	m, _ := MatrixFromData([]float64{
		1, 10,
		3, 20,
		5, 30,
	}, 3, 2)
	means := ColumnMeans(m)
	if means[0] != 3 || means[1] != 20 {
		t.Fatalf("means = %v", means)
	}
	CenterColumns(m, means)
	means2 := ColumnMeans(m)
	if math.Abs(means2[0]) > 1e-15 || math.Abs(means2[1]) > 1e-15 {
		t.Fatalf("after centering means = %v", means2)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated columns: cov matrix is rank 1.
	m, _ := MatrixFromData([]float64{
		1, 2,
		2, 4,
		3, 6,
		4, 8,
	}, 4, 2)
	cov := Covariance(m)
	// var(col0) = 5/3; cov = 10/3; var(col1) = 20/3 (sample, n-1).
	if math.Abs(cov.At(0, 0)-5.0/3) > 1e-12 ||
		math.Abs(cov.At(0, 1)-10.0/3) > 1e-12 ||
		math.Abs(cov.At(1, 1)-20.0/3) > 1e-12 {
		t.Fatalf("cov = %v", cov.Data)
	}
	if cov.At(0, 1) != cov.At(1, 0) {
		t.Fatal("covariance not symmetric")
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a, _ := MatrixFromData([]float64{
		3, 0, 0,
		0, 7, 0,
		0, 0, 1,
	}, 3, 3)
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 3, 1}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-12 {
			t.Fatalf("eigenvalues = %v, want %v", vals, want)
		}
	}
	// Eigenvector for 7 must be ±e1.
	if math.Abs(math.Abs(vecs.At(1, 0))-1) > 1e-12 {
		t.Fatalf("top eigenvector = %v", vecs.Col(0))
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a, _ := MatrixFromData([]float64{2, 1, 1, 2}, 2, 2)
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Check A v = λ v for the top pair.
	for r := 0; r < 2; r++ {
		av := a.At(r, 0)*vecs.At(0, 0) + a.At(r, 1)*vecs.At(1, 0)
		if math.Abs(av-3*vecs.At(r, 0)) > 1e-12 {
			t.Fatalf("A·v != λ·v at row %d", r)
		}
	}
}

func TestEigenSymRandomReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		n := 5 + trial*7
		b := randomMatrix(rng, n, n)
		// a = b bᵀ is symmetric positive semi-definite.
		a, err := b.Mul(b.T())
		if err != nil {
			t.Fatal(err)
		}
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		// All eigenvalues of b bᵀ are >= 0.
		for _, v := range vals {
			if v < -1e-8 {
				t.Fatalf("negative eigenvalue %v for PSD matrix", v)
			}
		}
		// Orthogonality: VᵀV = I.
		vtv, _ := vecs.T().Mul(vecs)
		if d := vtv.MaxAbsDiff(Identity(n)); d > 1e-8 {
			t.Fatalf("VᵀV deviates from I by %v", d)
		}
		// Reconstruction: V diag(vals) Vᵀ = a.
		lam := NewMatrix(n, n)
		for i, v := range vals {
			lam.Set(i, i, v)
		}
		tmp, _ := vecs.Mul(lam)
		rec, _ := tmp.Mul(vecs.T())
		if d := rec.MaxAbsDiff(a); d > 1e-7*(a.FrobeniusNorm()+1) {
			t.Fatalf("n=%d: eigen reconstruction error %v", n, d)
		}
	}
}

func TestEigenSymRejectsNonSymmetric(t *testing.T) {
	a, _ := MatrixFromData([]float64{1, 2, 3, 4}, 2, 2)
	if _, _, err := EigenSym(a); err == nil {
		t.Fatal("expected non-symmetric error")
	}
	if _, _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestSVDIdentityAndDiagonal(t *testing.T) {
	r, err := SVD(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.S {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("S = %v, want all ones", r.S)
		}
	}
	d, _ := MatrixFromData([]float64{
		0, 5,
		2, 0,
	}, 2, 2)
	r, err = SVD(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.S[0]-5) > 1e-12 || math.Abs(r.S[1]-2) > 1e-12 {
		t.Fatalf("singular values = %v, want [5 2]", r.S)
	}
}

func svdChecks(t *testing.T, a *Matrix) {
	t.Helper()
	r, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	// Descending non-negative.
	for i, s := range r.S {
		if s < 0 {
			t.Fatalf("negative singular value %v", s)
		}
		if i > 0 && r.S[i] > r.S[i-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", r.S)
		}
	}
	// Full reconstruction.
	rec, err := Reconstruct(r.U, r.S, r.V)
	if err != nil {
		t.Fatal(err)
	}
	if d := rec.MaxAbsDiff(a); d > 1e-8*(a.FrobeniusNorm()+1) {
		t.Fatalf("SVD reconstruction error %v (%dx%d)", d, a.Rows, a.Cols)
	}
	// V orthogonal.
	vtv, _ := r.V.T().Mul(r.V)
	if d := vtv.MaxAbsDiff(Identity(r.V.Cols)); d > 1e-8 {
		t.Fatalf("VᵀV deviates from I by %v", d)
	}
}

func TestSVDRandomTallAndWide(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	svdChecks(t, randomMatrix(rng, 20, 6))
	svdChecks(t, randomMatrix(rng, 6, 20)) // wide path via transpose
	svdChecks(t, randomMatrix(rng, 13, 13))
	svdChecks(t, randomMatrix(rng, 1, 5))
	svdChecks(t, randomMatrix(rng, 5, 1))
}

func TestSVDLowRankTruncation(t *testing.T) {
	// Build an exactly rank-2 matrix; rank-2 truncation must reproduce it.
	rng := rand.New(rand.NewSource(5))
	u := randomMatrix(rng, 12, 2)
	v := randomMatrix(rng, 2, 7)
	a, _ := u.Mul(v)
	r, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < len(r.S); i++ {
		if r.S[i] > 1e-8*r.S[0] {
			t.Fatalf("rank-2 matrix has significant sigma_%d = %v", i, r.S[i])
		}
	}
	uk, sk, vk := r.Truncate(2)
	rec, err := Reconstruct(uk, sk, vk)
	if err != nil {
		t.Fatal(err)
	}
	if d := rec.MaxAbsDiff(a); d > 1e-8*(a.FrobeniusNorm()+1) {
		t.Fatalf("rank-2 reconstruction error %v", d)
	}
}

func TestRankForEnergy(t *testing.T) {
	spec := []float64{50, 30, 15, 5}
	cases := []struct {
		frac float64
		want int
	}{
		{0.4, 1}, {0.5, 1}, {0.8, 2}, {0.95, 3}, {1.0, 4},
	}
	for _, c := range cases {
		if got := RankForEnergy(spec, c.frac); got != c.want {
			t.Fatalf("RankForEnergy(%v) = %d, want %d", c.frac, got, c.want)
		}
	}
	if got := RankForEnergy([]float64{0, 0}, 0.95); got != 1 {
		t.Fatalf("zero spectrum rank = %d, want 1", got)
	}
	if got := RankForEnergy(nil, 0.95); got != 1 {
		t.Fatalf("empty spectrum rank = %d, want 1", got)
	}
}

func TestReconstructShapeMismatch(t *testing.T) {
	if _, err := Reconstruct(NewMatrix(2, 2), []float64{1}, NewMatrix(2, 2)); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestSVDErrorsOnAbsurdInput(t *testing.T) {
	defer func() { recover() }()
	// NewMatrix panics on zero dims, so exercise the guard via struct literal.
	if _, err := SVD(&Matrix{Rows: 0, Cols: 0}); err == nil {
		t.Fatal("expected error for empty matrix")
	}
}

package linalg

import (
	"errors"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method. It returns eigenvalues in descending order
// and the matching eigenvectors as the COLUMNS of the returned matrix.
//
// Jacobi is quadratically convergent and unconditionally stable for
// symmetric input, which is exactly the covariance-matrix case PCA needs.
func EigenSym(a *Matrix) (eigenvalues []float64, eigenvectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("linalg: EigenSym requires a square matrix")
	}
	n := a.Rows
	// Verify symmetry up to roundoff so silent garbage can't escape.
	scale := a.FrobeniusNorm()
	tol := 1e-9 * (scale + 1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > tol {
				return nil, nil, errors.New("linalg: EigenSym input not symmetric")
			}
		}
	}

	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(2*off) <= 1e-14*(scale+1e-300) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Skip rotations that are pure roundoff.
				if math.Abs(apq) <= 1e-18*(math.Abs(app)+math.Abs(aqq)+1e-300) {
					w.Set(p, q, 0)
					w.Set(q, p, 0)
					continue
				}
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply rotation G(p,q,theta) on both sides of w and
				// accumulate into v.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Collect and sort by descending eigenvalue.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	eigenvalues = make([]float64, n)
	eigenvectors = NewMatrix(n, n)
	for newIdx, p := range pairs {
		eigenvalues[newIdx] = p.val
		for k := 0; k < n; k++ {
			eigenvectors.Set(k, newIdx, v.At(k, p.idx))
		}
	}
	return eigenvalues, eigenvectors, nil
}

package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestQRReconstructionAndOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][2]int{{8, 8}, {20, 5}, {12, 12}, {30, 3}} {
		a := randomMatrix(rng, shape[0], shape[1])
		q, r, err := QR(a)
		if err != nil {
			t.Fatal(err)
		}
		// Q R = A.
		qr, _ := q.Mul(r)
		if d := qr.MaxAbsDiff(a); d > 1e-10 {
			t.Fatalf("%v: QR reconstruction error %v", shape, d)
		}
		// QᵀQ = I.
		qtq, _ := q.T().Mul(q)
		if d := qtq.MaxAbsDiff(Identity(q.Cols)); d > 1e-10 {
			t.Fatalf("%v: Q not orthonormal (%v)", shape, d)
		}
		// R upper triangular.
		for i := 1; i < r.Rows; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatalf("%v: R not upper triangular", shape)
				}
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns: the second must become a zero column, not NaN.
	a, _ := MatrixFromData([]float64{
		1, 1,
		2, 2,
		3, 3,
	}, 3, 2)
	q, r, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	if r.At(1, 1) > 1e-10 {
		t.Fatalf("rank-deficient R11 = %v", r.At(1, 1))
	}
	for i := 0; i < 3; i++ {
		if math.IsNaN(q.At(i, 1)) {
			t.Fatal("NaN in Q for rank-deficient input")
		}
	}
}

func TestQRShapeError(t *testing.T) {
	if _, _, err := QR(NewMatrix(3, 5)); err == nil {
		t.Fatal("expected rows<cols rejection")
	}
}

func TestRandSVDExactOnLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Exactly rank-3 matrix.
	u := randomMatrix(rng, 60, 3)
	v := randomMatrix(rng, 3, 24)
	a, _ := u.Mul(v)
	res, err := RandSVD(a, 3, 5, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Reconstruct(res.U, res.S, res.V)
	if err != nil {
		t.Fatal(err)
	}
	if d := rec.MaxAbsDiff(a); d > 1e-8*(a.FrobeniusNorm()+1) {
		t.Fatalf("rank-3 RandSVD reconstruction error %v", d)
	}
}

func TestRandSVDMatchesExactLeadingValues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 50, 20)
	// Impose spectral decay so the leading subspace is well separated.
	exact, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for j := range exact.S {
		exact.S[j] *= math.Pow(0.5, float64(j))
	}
	b, err := Reconstruct(exact.U, exact.S, exact.V)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := RandSVD(b, 5, 8, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SVD(b)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		if rel := math.Abs(approx.S[j]-ref.S[j]) / (ref.S[j] + 1e-300); rel > 0.02 {
			t.Fatalf("sigma_%d: approx %v vs exact %v (rel %v)", j, approx.S[j], ref.S[j], rel)
		}
	}
}

func TestRandSVDWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := randomMatrix(rng, 2, 10)
	v := randomMatrix(rng, 10, 40)
	uv, _ := u.Mul(v) // 2x40, rank <= 2
	res, err := RandSVD(uv, 2, 4, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Reconstruct(res.U, res.S, res.V)
	if err != nil {
		t.Fatal(err)
	}
	if d := rec.MaxAbsDiff(uv); d > 1e-8*(uv.FrobeniusNorm()+1) {
		t.Fatalf("wide RandSVD error %v", d)
	}
}

func TestRandSVDDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 30, 12)
	r1, err := RandSVD(a, 4, 4, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RandSVD(a, 4, 4, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	for j := range r1.S {
		if r1.S[j] != r2.S[j] {
			t.Fatal("RandSVD not deterministic for fixed seed")
		}
	}
}

func TestRandSVDValidation(t *testing.T) {
	if _, err := RandSVD(&Matrix{}, 2, 2, 1, 0); err == nil {
		t.Fatal("expected empty-matrix rejection")
	}
	if _, err := RandSVD(NewMatrix(4, 4), 0, 2, 1, 0); err == nil {
		t.Fatal("expected rank-0 rejection")
	}
}

func TestRandSVDRankClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 10, 4)
	res, err := RandSVD(a, 99, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.S) > 4 {
		t.Fatalf("rank not clamped: %d singular values", len(res.S))
	}
}

package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	// Sprinkle exact zeros so the zero-skip fast path is exercised: skipping
	// a term must not flip any downstream sign (-0.0 vs +0.0).
	for i := 0; i < len(m.Data); i += 17 {
		m.Data[i] = 0
	}
	return m
}

func requireBitwiseEqual(t *testing.T, name string, a, b *Matrix) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape mismatch %dx%d vs %dx%d", name, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("%s: element %d differs bitwise: %x vs %x",
				name, i, math.Float64bits(a.Data[i]), math.Float64bits(b.Data[i]))
		}
	}
}

// TestMulWorkersBitwiseEqual: row-sharded matmul preserves the per-element
// accumulation order, so results are bitwise identical — not merely close —
// at every worker count, above and below the flop gate.
func TestMulWorkersBitwiseEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shapes := []struct{ m, k, n int }{
		{3, 4, 5},    // tiny: below the parallel gate
		{64, 80, 70}, // above the gate
		{1, 128, 64}, // single row: gate declines
	}
	for _, s := range shapes {
		a := randMatrix(rng, s.m, s.k)
		b := randMatrix(rng, s.k, s.n)
		want, err := a.MulWorkers(b, 1)
		if err != nil {
			t.Fatalf("serial mul: %v", err)
		}
		for _, w := range []int{2, 4, 8} {
			got, err := a.MulWorkers(b, w)
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			requireBitwiseEqual(t, "mul", want, got)
		}
		def, err := a.Mul(b)
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		requireBitwiseEqual(t, "mul-default", want, def)
	}
}

// TestCovarianceWorkersBitwiseEqual: the sharded covariance (centering +
// upper-triangle accumulation) must match the serial path bit for bit.
func TestCovarianceWorkersBitwiseEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, s := range []struct{ rows, cols int }{{5, 4}, {200, 40}, {2, 64}} {
		m := randMatrix(rng, s.rows, s.cols)
		want := CovarianceWorkers(m, 1)
		for _, w := range []int{2, 4, 8} {
			got := CovarianceWorkers(m, w)
			requireBitwiseEqual(t, "cov", want, got)
		}
		requireBitwiseEqual(t, "cov-default", want, Covariance(m))
	}
}

package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// QR computes a thin QR factorisation of a (m >= n required) by modified
// Gram-Schmidt: a = Q·R with Q m×n orthonormal columns and R n×n upper
// triangular. Rank-deficient columns yield zero columns in Q (and zero
// diagonal in R).
func QR(a *Matrix) (q, r *Matrix, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, nil, fmt.Errorf("linalg: QR needs rows >= cols, got %dx%d", m, n)
	}
	q = a.Clone()
	r = NewMatrix(n, n)
	// Columns whose residual is pure roundoff must become exact zero
	// columns: normalising numerical noise would produce directions that
	// are not orthogonal to the span already built.
	dropTol := 1e-12 * (a.FrobeniusNorm() + 1e-300)
	for j := 0; j < n; j++ {
		// Normalise column j.
		norm := 0.0
		for i := 0; i < m; i++ {
			v := q.At(i, j)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm <= dropTol {
			for i := 0; i < m; i++ {
				q.Set(i, j, 0)
			}
			r.Set(j, j, 0)
			continue
		}
		r.Set(j, j, norm)
		inv := 1 / norm
		for i := 0; i < m; i++ {
			q.Set(i, j, q.At(i, j)*inv)
		}
		// Orthogonalise the remaining columns against it.
		for k := j + 1; k < n; k++ {
			dot := 0.0
			for i := 0; i < m; i++ {
				dot += q.At(i, j) * q.At(i, k)
			}
			r.Set(j, k, dot)
			for i := 0; i < m; i++ {
				q.Set(i, k, q.At(i, k)-dot*q.At(i, j))
			}
		}
	}
	return q, r, nil
}

// RandSVD computes an approximate rank-k SVD of a using the randomized
// range finder of Halko, Martinsson & Tropp (2011): sample Y = (A·Aᵀ)^p A Ω
// with a Gaussian test matrix Ω (k + oversample columns), orthonormalise to
// Q, and solve the small exact SVD of QᵀA. Cost is O(mn(k+p)) instead of
// the full O(mn²) one-sided Jacobi — the speed lever for PCA/SVD
// preconditioning at scale (the paper's "reduce the compression overhead"
// future work).
//
// The seed makes the factorisation deterministic, which the compression
// pipeline requires for reproducible archives.
func RandSVD(a *Matrix, k, oversample, powerIters int, seed int64) (*SVDResult, error) {
	if a.Rows == 0 || a.Cols == 0 {
		return nil, errors.New("linalg: RandSVD of empty matrix")
	}
	if k < 1 {
		return nil, fmt.Errorf("linalg: RandSVD rank %d", k)
	}
	if a.Rows < a.Cols {
		r, err := RandSVD(a.T(), k, oversample, powerIters, seed)
		if err != nil {
			return nil, err
		}
		return &SVDResult{U: r.V, S: r.S, V: r.U}, nil
	}
	n := a.Cols
	if oversample < 0 {
		oversample = 0
	}
	l := k + oversample
	if l > n {
		l = n
	}

	// Y = A * Omega.
	rng := rand.New(rand.NewSource(seed))
	omega := NewMatrix(n, l)
	for i := range omega.Data {
		omega.Data[i] = rng.NormFloat64()
	}
	y, err := a.Mul(omega)
	if err != nil {
		return nil, err
	}
	// Power iterations sharpen the spectrum: Y <- A (Aᵀ Y), with
	// re-orthonormalisation for numerical stability.
	at := a.T()
	for p := 0; p < powerIters; p++ {
		q, _, err := QR(y)
		if err != nil {
			return nil, err
		}
		z, err := at.Mul(q)
		if err != nil {
			return nil, err
		}
		qz, _, err := QR(z)
		if err != nil {
			return nil, err
		}
		y, err = a.Mul(qz)
		if err != nil {
			return nil, err
		}
	}
	q, _, err := QR(y)
	if err != nil {
		return nil, err
	}

	// B = Qᵀ A is small (l x n); factor it exactly.
	b, err := q.T().Mul(a)
	if err != nil {
		return nil, err
	}
	small, err := SVD(b)
	if err != nil {
		return nil, err
	}
	// U = Q * U_b.
	u, err := q.Mul(small.U)
	if err != nil {
		return nil, err
	}
	res := &SVDResult{U: u, S: small.S, V: small.V}
	// Trim to the requested rank.
	uk, sk, vk := res.Truncate(k)
	return &SVDResult{U: uk, S: sk, V: vk}, nil
}

// Package linalg implements the dense linear algebra used by the PCA and
// SVD reduced models: matrix products, covariance matrices, a symmetric
// Jacobi eigendecomposition, and a one-sided Jacobi thin SVD.
//
// Everything is written for correctness and clarity at the matrix sizes the
// paper exercises (matricized fields with a few hundred columns); no BLAS
// is used, stdlib only.
package linalg

import (
	"fmt"
	"math"

	"lrm/internal/parallel"
)

// minParallelFlops gates the sharded kernels: below roughly this many
// multiply-adds the pool fork/join costs more than the arithmetic.
const minParallelFlops = 1 << 17

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, element (i,j) at i*Cols+j
}

// NewMatrix returns a zero-filled rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromData wraps data (not copied) as a rows×cols matrix.
func MatrixFromData(data []float64, rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 || len(data) != rows*cols {
		return nil, fmt.Errorf("linalg: data length %d does not fit %dx%d", len(data), rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m · b. Large products shard by output row across the worker
// pool; every row keeps the serial per-element accumulation order, so the
// result is bitwise identical at any worker count.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	return m.MulWorkers(b, parallel.DefaultWorkers())
}

// MulWorkers is Mul with an explicit worker count (1 = serial).
func (m *Matrix) MulWorkers(b *Matrix, workers int) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	if workers > 1 && m.Rows > 1 && m.Rows*m.Cols*b.Cols >= minParallelFlops {
		parallel.ForShard(workers, m.Rows, func(_, lo, hi int) {
			mulRows(m, b, out, lo, hi)
		})
	} else {
		mulRows(m, b, out, 0, m.Rows)
	}
	return out, nil
}

// mulRows computes output rows [lo, hi) of m · b. Disjoint row ranges
// touch disjoint output memory, so shards never conflict.
func mulRows(m, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("linalg: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out, nil
}

// Col returns column j as a slice copy.
func (m *Matrix) Col(j int) []float64 {
	c := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		c[i] = m.At(i, j)
	}
	return c
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return math.Inf(1)
	}
	d := 0.0
	for i := range m.Data {
		if v := math.Abs(m.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// ColumnMeans returns the mean of each column of m.
func ColumnMeans(m *Matrix) []float64 {
	means := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(m.Rows)
	}
	return means
}

// CenterColumns subtracts means[j] from every element of column j in place.
func CenterColumns(m *Matrix, means []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] -= means[j]
		}
	}
}

// Covariance returns the Cols×Cols sample covariance matrix of the columns
// of m (columns are variables, rows are observations). m is not modified.
// Large inputs shard across the worker pool by output row; each cov entry
// accumulates its observation terms in ascending row order exactly as the
// serial loop does (including the va == 0 skip, which also keeps -0.0
// accumulators intact), so the result is bitwise identical at any worker
// count.
func Covariance(m *Matrix) *Matrix {
	return CovarianceWorkers(m, parallel.DefaultWorkers())
}

// CovarianceWorkers is Covariance with an explicit worker count (1 = serial).
func CovarianceWorkers(m *Matrix, workers int) *Matrix {
	means := ColumnMeans(m)
	n := m.Cols
	cov := NewMatrix(n, n)
	denom := float64(m.Rows - 1)
	if m.Rows < 2 {
		denom = 1
	}
	if workers > 1 && n > 1 && m.Rows*n*n/2 >= minParallelFlops {
		// Center once (elementwise, order-free), then give each worker a
		// band of output rows a: the inner i-ascending accumulation per
		// (a, b) matches the serial interleaved order term for term.
		centered := make([]float64, m.Rows*n)
		parallel.ForShard(workers, m.Rows, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				src := m.Data[i*n : (i+1)*n]
				dst := centered[i*n : (i+1)*n]
				for j := range src {
					dst[j] = src[j] - means[j]
				}
			}
		})
		parallel.ForShard(workers, n, func(_, alo, ahi int) {
			for a := alo; a < ahi; a++ {
				crow := cov.Data[a*n : (a+1)*n]
				for i := 0; i < m.Rows; i++ {
					row := centered[i*n : (i+1)*n]
					va := row[a]
					if va == 0 {
						continue
					}
					for b := a; b < n; b++ {
						crow[b] += va * row[b]
					}
				}
			}
		})
	} else {
		// Accumulate upper triangle row-by-row.
		row := make([]float64, n)
		for i := 0; i < m.Rows; i++ {
			src := m.Data[i*n : (i+1)*n]
			for j := range src {
				row[j] = src[j] - means[j]
			}
			for a := 0; a < n; a++ {
				va := row[a]
				if va == 0 {
					continue
				}
				crow := cov.Data[a*n : (a+1)*n]
				for b := a; b < n; b++ {
					crow[b] += va * row[b]
				}
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			v := cov.At(a, b) / denom
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov
}

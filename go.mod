module lrm

go 1.22
